//! `campaign_supervisor` — cross-process shard orchestration.
//!
//! Spawns one `campaign_run --shard k/N` child per shard, watches
//! heartbeats and journal growth, restarts dead or wedged shards with
//! `--resume` under bounded exponential backoff, and merges the shard
//! exports. A shard that exhausts its restart budget is quarantined
//! while the rest complete; the merged export is then partial and the
//! manifest names exactly which shards and jobs are missing.
//!
//! ```text
//! campaign_supervisor --shards 3 --dir runs/camp \
//!     --organization 64x64 --seeds 1,2,3,4 --population mixed:600
//! ```
//!
//! Exit codes extend the `campaign_run` contract one level up:
//!
//! * `0` — every shard completed, no poisoned jobs
//! * `2` — usage error
//! * `3` — supervisor error (spawn failure, child usage error, I/O)
//! * `4` — every shard completed but some jobs are poison-quarantined
//! * `5` — degraded: shards were quarantined, the export is partial

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use campaign::supervise::{supervise, ShardCommand, ShardFate, SupervisorOptions};
use campaign::{ProcessInjection, ProcessInjector};

/// A malformed command line: the offending flag and why.
#[derive(Debug)]
struct UsageError {
    flag: String,
    reason: String,
}

impl UsageError {
    fn new(flag: &str, reason: impl Into<String>) -> Self {
        Self {
            flag: flag.to_string(),
            reason: reason.into(),
        }
    }
}

const USAGE: &str = "usage: campaign_supervisor --shards N --dir PATH [options] [plan flags]
  --shards N                shard processes to supervise (required)
  --dir PATH                directory for per-shard journals, exports,
                            heartbeats, the merged export and manifest
  --export PATH             merged export path (default DIR/merged.bin)
  --manifest PATH           manifest path (default DIR/manifest.txt)
  --child PATH              campaign_run binary (default: sibling of this one)
  --restart-budget N        restarts per shard before quarantine (default 3)
  --restart-backoff-ms N    first restart delay (default 100, doubles per restart)
  --restart-backoff-cap-ms N  upper bound on the restart delay (default 2000)
  --poll-ms N               supervisor poll interval (default 25)
  --stall-timeout-ms N      no-progress window before a child is declared
                            wedged and SIGKILLed (default 10000)
plan flags are passed through to every child: --organization --seeds
--algorithms --orders --backgrounds --population --backend --threads
--max-attempts --backoff-ms --job-delay-ms
debug fault injections (for the kill-storm harness; repeatable):
  --kill-shard K@BEATS      SIGKILL shard K's child at BEATS heartbeats
  --stall-shard K@JOBS      shard K stops heartbeating after JOBS jobs
                            (first launch only)
  --wedge-shard K@JOBS      shard K hangs after JOBS jobs (first launch only)
  --crash-shard K@RECORDS   shard K aborts after RECORDS journal records,
                            on every launch (restart-budget exhaustion)
exit codes:
  0  every shard completed, no poisoned jobs
  2  usage error (unknown flag, malformed value)
  3  supervisor error (spawn failure, child usage error, I/O)
  4  every shard completed but some jobs are poison-quarantined
  5  degraded: shards were quarantined, the export is partial";

/// Flags forwarded verbatim (with their value) to every child.
const PLAN_FLAGS: [&str; 11] = [
    "--organization",
    "--seeds",
    "--algorithms",
    "--orders",
    "--backgrounds",
    "--population",
    "--backend",
    "--threads",
    "--max-attempts",
    "--backoff-ms",
    "--job-delay-ms",
];

/// Flags the supervisor consumes itself, each taking one value.
const SUPERVISOR_FLAGS: [&str; 9] = [
    "--shards",
    "--dir",
    "--export",
    "--manifest",
    "--child",
    "--restart-budget",
    "--restart-backoff-ms",
    "--restart-backoff-cap-ms",
    "--poll-ms",
];

/// Injection flags, each taking one `K@N` value; repeatable.
const INJECTION_FLAGS: [&str; 4] = [
    "--kill-shard",
    "--stall-shard",
    "--wedge-shard",
    "--crash-shard",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("campaign_supervisor: {}: {}", usage.flag, usage.reason);
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed command line: the supervisor's own knobs, the pass-through
/// plan flags, and the armed injections.
struct Cli {
    values: std::collections::HashMap<String, String>,
    plan_args: Vec<String>,
    injections: Vec<(String, u32, u64)>,
    stall_timeout_ms: Option<u64>,
}

/// Splits `K@N` into `(shard, threshold)`.
fn parse_at(flag: &str, raw: &str) -> Result<(u32, u64), UsageError> {
    raw.split_once('@')
        .and_then(|(shard, threshold)| {
            Some((shard.trim().parse().ok()?, threshold.trim().parse().ok()?))
        })
        .ok_or_else(|| UsageError::new(flag, format!("cannot parse \"{raw}\" (expected K@N)")))
}

fn parse_cli(args: &[String]) -> Result<Cli, UsageError> {
    let mut cli = Cli {
        values: std::collections::HashMap::new(),
        plan_args: Vec::new(),
        injections: Vec::new(),
        stall_timeout_ms: None,
    };
    let mut index = 0;
    while index < args.len() {
        let arg = &args[index];
        if !arg.starts_with("--") {
            return Err(UsageError::new(arg, "expected a --flag"));
        }
        let value = |index: usize| -> Result<String, UsageError> {
            args.get(index + 1)
                .cloned()
                .ok_or_else(|| UsageError::new(arg, "missing value"))
        };
        if arg == "--stall-timeout-ms" {
            cli.stall_timeout_ms = Some(
                value(index)?
                    .parse()
                    .map_err(|_| UsageError::new(arg, "cannot parse milliseconds"))?,
            );
            index += 2;
        } else if SUPERVISOR_FLAGS.contains(&arg.as_str()) {
            cli.values.insert(arg.clone(), value(index)?);
            index += 2;
        } else if INJECTION_FLAGS.contains(&arg.as_str()) {
            let (shard, threshold) = parse_at(arg, &value(index)?)?;
            cli.injections.push((arg.clone(), shard, threshold));
            index += 2;
        } else if PLAN_FLAGS.contains(&arg.as_str()) {
            cli.plan_args.push(arg.clone());
            cli.plan_args.push(value(index)?);
            index += 2;
        } else {
            return Err(UsageError::new(arg, "unknown flag"));
        }
    }
    Ok(cli)
}

/// Builds the [`ProcessInjector`] from the parsed injection flags.
fn build_injector(injections: &[(String, u32, u64)]) -> ProcessInjector {
    let kills = injections
        .iter()
        .filter(|(flag, _, _)| flag == "--kill-shard")
        .map(|(_, shard, after_beats)| ProcessInjection::KillChild {
            shard: *shard,
            after_beats: *after_beats,
        })
        .collect();
    let mut injector = ProcessInjector::new(kills);
    for (flag, shard, threshold) in injections {
        let threshold = threshold.to_string();
        injector = match flag.as_str() {
            "--stall-shard" => {
                injector.with_first_launch_args(*shard, &["--stall-heartbeat-after", &threshold])
            }
            "--wedge-shard" => {
                injector.with_first_launch_args(*shard, &["--wedge-after", &threshold])
            }
            "--crash-shard" => {
                injector.with_every_launch_args(*shard, &["--abort-after-records", &threshold])
            }
            _ => injector,
        };
    }
    injector
}

fn run(args: &[String]) -> Result<ExitCode, UsageError> {
    if args.iter().any(|a| a == "--help") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let cli = parse_cli(args)?;
    let parse = |flag: &str, default: u64| -> Result<u64, UsageError> {
        match cli.values.get(flag) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| UsageError::new(flag, format!("cannot parse \"{raw}\""))),
        }
    };

    let shards = parse("--shards", 0)?;
    if shards == 0 {
        return Err(UsageError::new("--shards", "required, and at least 1"));
    }
    let dir = cli
        .values
        .get("--dir")
        .map(PathBuf::from)
        .ok_or_else(|| UsageError::new("--dir", "required flag missing"))?;

    let mut options = SupervisorOptions::in_dir(dir, shards as u32);
    if let Some(path) = cli.values.get("--export") {
        options.merged_export = PathBuf::from(path);
    }
    if let Some(path) = cli.values.get("--manifest") {
        options.manifest = PathBuf::from(path);
    }
    options.restart_budget = parse("--restart-budget", 3)? as u32;
    options.backoff_base = Duration::from_millis(parse("--restart-backoff-ms", 100)?);
    options.backoff_cap = Duration::from_millis(parse("--restart-backoff-cap-ms", 2000)?);
    options.poll_interval = Duration::from_millis(parse("--poll-ms", 25)?);
    options.stall_timeout = Duration::from_millis(cli.stall_timeout_ms.unwrap_or(10_000));

    let program = match cli.values.get("--child") {
        Some(path) => PathBuf::from(path),
        None => default_child_path().ok_or_else(|| {
            UsageError::new("--child", "cannot locate campaign_run next to this binary")
        })?,
    };
    let command = ShardCommand {
        program,
        plan_args: cli.plan_args,
    };
    let injector = build_injector(&cli.injections);

    match supervise(&command, &options, &injector) {
        Ok(report) => {
            for (shard, fate) in report.fates.iter().enumerate() {
                match fate {
                    ShardFate::Completed { poisoned, restarts } => {
                        let poison = if *poisoned {
                            ", poisoned jobs inside"
                        } else {
                            ""
                        };
                        println!(
                            "supervisor: shard {shard} completed ({restarts} restarts{poison})"
                        );
                    }
                    ShardFate::Quarantined {
                        restarts,
                        last_failure,
                    } => {
                        eprintln!(
                            "supervisor: shard {shard} quarantined after {restarts} restarts \
                             (last failure: {last_failure})"
                        );
                    }
                }
            }
            println!(
                "supervisor: merged {}/{} jobs into {} (manifest {})",
                report.total_jobs as usize - report.missing_jobs.len(),
                report.total_jobs,
                report.merged_export.display(),
                report.manifest.display(),
            );
            if report.degraded() {
                eprintln!(
                    "supervisor: DEGRADED — {} jobs missing, see the manifest",
                    report.missing_jobs.len()
                );
                Ok(ExitCode::from(5))
            } else if report.poisoned() {
                for job in &report.poisoned_jobs {
                    eprintln!("supervisor: job {job} is poison-quarantined");
                }
                Ok(ExitCode::from(4))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        Err(error) => {
            eprintln!("campaign_supervisor: {error}");
            Ok(ExitCode::from(3))
        }
    }
}

/// `campaign_run` next to the running `campaign_supervisor` binary.
fn default_child_path() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let sibling = exe.parent()?.join("campaign_run");
    sibling.exists().then_some(sibling)
}
