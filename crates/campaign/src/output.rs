//! Deterministic campaign exports.
//!
//! An export is the campaign's *answer*: one fixed-width record per job,
//! sorted by job index, plus a trailing digest over the whole byte
//! stream. Because each job's result is deterministic and the records are
//! emitted in plan order, the export is **byte-identical** across thread
//! counts and across interrupt/resume cycles — which is exactly what the
//! differential tests and the CI kill-and-resume smoke job compare.
//!
//! Sharded campaigns produce one partial export each;
//! [`merge_exports`] recombines them, refusing overlaps, gaps and
//! cross-plan mixes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use march_test::rng::Fnv1a;

use crate::error::CampaignError;
use crate::journal::JobResult;

/// Export header magic: `b"SRAMCOUT"`.
pub const EXPORT_MAGIC: [u8; 8] = *b"SRAMCOUT";
/// Export format version.
pub const EXPORT_VERSION: u32 = 1;
/// Export header length in bytes.
pub const EXPORT_HEADER_LEN: usize = 32;
/// Export record length in bytes.
pub const EXPORT_RECORD_LEN: usize = 32;

/// Terminal status of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job completed with a result.
    Completed,
    /// The job exhausted its attempts and was quarantined.
    Poisoned,
}

/// One job's line in the export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// Plan index of the job.
    pub job: u32,
    /// Whether the job completed or was poisoned.
    pub status: JobStatus,
    /// The result for completed jobs; all-zero for poisoned ones (so the
    /// export stays deterministic regardless of *how* a job failed).
    pub result: JobResult,
}

/// A decoded export: the plan identity plus per-job outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Digest of the plan the outcomes belong to.
    pub plan_digest: u64,
    /// Total jobs in the plan (not just in this shard's export).
    pub total_jobs: u32,
    /// The outcomes, sorted by job index.
    pub outcomes: Vec<JobOutcome>,
}

impl Export {
    /// Builds an export, sorting outcomes by job index.
    pub fn new(plan_digest: u64, total_jobs: u32, mut outcomes: Vec<JobOutcome>) -> Self {
        outcomes.sort_by_key(|outcome| outcome.job);
        Self {
            plan_digest,
            total_jobs,
            outcomes,
        }
    }

    /// Encodes the export into its byte form (header, sorted records,
    /// trailing digest).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes =
            Vec::with_capacity(EXPORT_HEADER_LEN + self.outcomes.len() * EXPORT_RECORD_LEN + 8);
        bytes.extend_from_slice(&EXPORT_MAGIC);
        bytes.extend_from_slice(&EXPORT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(self.outcomes.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&self.total_jobs.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]); // reserved
        bytes.extend_from_slice(&self.plan_digest.to_le_bytes());
        debug_assert_eq!(bytes.len(), EXPORT_HEADER_LEN);
        for outcome in &self.outcomes {
            bytes.extend_from_slice(&outcome.job.to_le_bytes());
            bytes.push(match outcome.status {
                JobStatus::Completed => 1,
                JobStatus::Poisoned => 3,
            });
            bytes.extend_from_slice(&[0u8; 3]); // pad
            bytes.extend_from_slice(&outcome.result.detected.to_le_bytes());
            bytes.extend_from_slice(&outcome.result.total.to_le_bytes());
            bytes.extend_from_slice(&outcome.result.mismatches.to_le_bytes());
            bytes.extend_from_slice(&outcome.result.digest.to_le_bytes());
        }
        let digest = Fnv1a::hash(&bytes);
        bytes.extend_from_slice(&digest.to_le_bytes());
        bytes
    }

    /// Decodes an export, verifying the magic, version and trailing
    /// digest.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CampaignError> {
        if bytes.len() < EXPORT_HEADER_LEN + 8 {
            return Err(CampaignError::Corrupt {
                offset: 0,
                reason: format!("export too short ({} bytes)", bytes.len()),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        if Fnv1a::hash(body) != stored {
            return Err(CampaignError::Corrupt {
                offset: body.len() as u64,
                reason: "export digest mismatch".to_string(),
            });
        }
        if body[0..8] != EXPORT_MAGIC {
            return Err(CampaignError::Corrupt {
                offset: 0,
                reason: "bad export magic".to_string(),
            });
        }
        let version = u32::from_le_bytes(body[8..12].try_into().unwrap());
        if version != EXPORT_VERSION {
            return Err(CampaignError::Corrupt {
                offset: 8,
                reason: format!("unsupported export version {version}"),
            });
        }
        let count = u32::from_le_bytes(body[12..16].try_into().unwrap()) as usize;
        let total_jobs = u32::from_le_bytes(body[16..20].try_into().unwrap());
        let plan_digest = u64::from_le_bytes(body[24..32].try_into().unwrap());
        if body.len() != EXPORT_HEADER_LEN + count * EXPORT_RECORD_LEN {
            return Err(CampaignError::Corrupt {
                offset: 12,
                reason: format!("export length does not match {count} records"),
            });
        }
        let mut outcomes = Vec::with_capacity(count);
        for index in 0..count {
            let at = EXPORT_HEADER_LEN + index * EXPORT_RECORD_LEN;
            let record = &body[at..at + EXPORT_RECORD_LEN];
            let status = match record[4] {
                1 => JobStatus::Completed,
                3 => JobStatus::Poisoned,
                other => {
                    return Err(CampaignError::Corrupt {
                        offset: at as u64 + 4,
                        reason: format!("unknown job status {other}"),
                    });
                }
            };
            outcomes.push(JobOutcome {
                job: u32::from_le_bytes(record[0..4].try_into().unwrap()),
                status,
                result: JobResult {
                    detected: u32::from_le_bytes(record[8..12].try_into().unwrap()),
                    total: u32::from_le_bytes(record[12..16].try_into().unwrap()),
                    mismatches: u64::from_le_bytes(record[16..24].try_into().unwrap()),
                    digest: u64::from_le_bytes(record[24..32].try_into().unwrap()),
                },
            });
        }
        Ok(Self {
            plan_digest,
            total_jobs,
            outcomes,
        })
    }

    /// Writes the export to `path`.
    pub fn write(&self, path: &Path) -> Result<(), CampaignError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|error| CampaignError::io(format!("write export {path:?}"), &error))
    }

    /// Reads an export from `path`.
    pub fn read(path: &Path) -> Result<Self, CampaignError> {
        let bytes = std::fs::read(path)
            .map_err(|error| CampaignError::io(format!("read export {path:?}"), &error))?;
        Self::from_bytes(&bytes)
    }
}

/// One shard's export together with where it came from, so merge
/// conflicts can name the offending shard and file instead of an
/// anonymous "two exports".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardExport {
    /// Shard index the export belongs to.
    pub shard: u32,
    /// File the export was read from (or will be attributed to).
    pub path: PathBuf,
    /// The decoded export.
    pub export: Export,
}

impl ShardExport {
    /// Reads and decodes shard `shard`'s export from `path`.
    pub fn read(shard: u32, path: &Path) -> Result<Self, CampaignError> {
        Ok(Self {
            shard,
            path: path.to_path_buf(),
            export: Export::read(path)?,
        })
    }

    /// How this part is named in merge errors and manifests.
    fn label(&self) -> String {
        format!("shard {} ({})", self.shard, self.path.display())
    }
}

/// A merge over a *subset* of a plan's shards: whatever outcomes the
/// present shards cover, plus the jobs no present shard owned — the
/// degraded-mode result a supervisor emits when a shard exhausted its
/// restart budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialMerge {
    /// The merged export over the present outcomes (sorted by job).
    pub export: Export,
    /// Plan job indices no present export covered, in order. Empty when
    /// the merge is actually complete.
    pub missing_jobs: Vec<u32>,
}

/// The merge core: combines labelled parts, refusing mixed plans and
/// overlapping jobs with errors that name the offending parts. Gaps are
/// reported, not rejected — callers decide whether partial coverage is
/// an error ([`merge_shard_exports`]) or a degraded result
/// ([`merge_shard_exports_partial`]).
fn merge_labeled(parts: &[ShardExport]) -> Result<PartialMerge, CampaignError> {
    let Some(first) = parts.first() else {
        return Err(CampaignError::MergeConflict {
            reason: "no exports to merge".to_string(),
        });
    };
    let mut merged: BTreeMap<u32, (JobOutcome, usize)> = BTreeMap::new();
    for (index, part) in parts.iter().enumerate() {
        if part.export.plan_digest != first.export.plan_digest
            || part.export.total_jobs != first.export.total_jobs
        {
            return Err(CampaignError::MergeConflict {
                reason: format!(
                    "{} belongs to a different plan than {} (digest {:#018x} vs {:#018x}, {} vs {} jobs)",
                    part.label(),
                    first.label(),
                    part.export.plan_digest,
                    first.export.plan_digest,
                    part.export.total_jobs,
                    first.export.total_jobs,
                ),
            });
        }
        for outcome in &part.export.outcomes {
            if let Some((_, owner)) = merged.insert(outcome.job, (*outcome, index)) {
                return Err(CampaignError::MergeConflict {
                    reason: format!(
                        "job {} appears in both {} and {}",
                        outcome.job,
                        parts[owner].label(),
                        part.label(),
                    ),
                });
            }
        }
    }
    let missing_jobs: Vec<u32> = (0..first.export.total_jobs)
        .filter(|job| !merged.contains_key(job))
        .collect();
    Ok(PartialMerge {
        export: Export::new(
            first.export.plan_digest,
            first.export.total_jobs,
            merged.into_values().map(|(outcome, _)| outcome).collect(),
        ),
        missing_jobs,
    })
}

/// Merges shard exports into one full export covering every job exactly
/// once. Refuses mixed plans, duplicate jobs and missing jobs, naming
/// the offending shard and file.
pub fn merge_shard_exports(parts: &[ShardExport]) -> Result<Export, CampaignError> {
    let merged = merge_labeled(parts)?;
    if let Some(&job) = merged.missing_jobs.first() {
        return Err(CampaignError::MergeConflict {
            reason: format!(
                "merged exports cover {} of {} jobs (job {} missing, no part owns it)",
                merged.export.outcomes.len(),
                merged.export.total_jobs,
                job,
            ),
        });
    }
    Ok(merged.export)
}

/// Merges whatever shard exports survived into a [`PartialMerge`]:
/// overlaps and plan mixes are still conflicts, but jobs no present
/// shard covered are *reported*, not rejected. A later run of the
/// missing shards produces exports that [`merge_shard_exports`] can
/// recombine with this partial export into the full answer.
pub fn merge_shard_exports_partial(parts: &[ShardExport]) -> Result<PartialMerge, CampaignError> {
    merge_labeled(parts)
}

/// Merges anonymous shard exports into one full export covering every
/// job exactly once. Refuses mixed plans, duplicate jobs and missing
/// jobs; parts are named positionally (`shard 0 (<part 0>)`, …) — use
/// [`merge_shard_exports`] when real shard indices and file paths are
/// known.
pub fn merge_exports(parts: &[Export]) -> Result<Export, CampaignError> {
    let labeled: Vec<ShardExport> = parts
        .iter()
        .enumerate()
        .map(|(index, export)| ShardExport {
            shard: index as u32,
            path: PathBuf::from(format!("<part {index}>")),
            export: export.clone(),
        })
        .collect();
    merge_shard_exports(&labeled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(job: u32) -> JobOutcome {
        JobOutcome {
            job,
            status: JobStatus::Completed,
            result: JobResult {
                detected: job,
                total: job + 5,
                mismatches: u64::from(job) * 7,
                digest: u64::from(job).wrapping_mul(0xABCD),
            },
        }
    }

    #[test]
    fn exports_round_trip_and_sort_by_job() {
        let export = Export::new(0xFEED, 3, vec![outcome(2), outcome(0), outcome(1)]);
        assert_eq!(export.outcomes[0].job, 0);
        let decoded = Export::from_bytes(&export.to_bytes()).expect("round trip");
        assert_eq!(decoded, export);
    }

    #[test]
    fn corrupt_exports_are_rejected() {
        let export = Export::new(0xFEED, 1, vec![outcome(0)]);
        let mut bytes = export.to_bytes();
        bytes[EXPORT_HEADER_LEN + 9] ^= 1;
        match Export::from_bytes(&bytes) {
            Err(CampaignError::Corrupt { reason, .. }) => {
                assert!(reason.contains("digest"));
            }
            other => panic!("expected digest mismatch, got {other:?}"),
        }
        assert!(Export::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn merge_requires_exactly_one_record_per_job() {
        let a = Export::new(1, 4, vec![outcome(0), outcome(2)]);
        let b = Export::new(1, 4, vec![outcome(1), outcome(3)]);
        let merged = merge_exports(&[a.clone(), b.clone()]).expect("disjoint shards merge");
        assert_eq!(merged.outcomes.len(), 4);
        assert_eq!(
            merged.to_bytes(),
            Export::new(1, 4, (0..4).map(outcome).collect()).to_bytes()
        );
        // Overlap, gap, plan mix and the empty list are all conflicts.
        assert!(merge_exports(&[a.clone(), a.clone()]).is_err());
        assert!(merge_exports(std::slice::from_ref(&a)).is_err());
        let other_plan = Export::new(2, 4, vec![outcome(1), outcome(3)]);
        assert!(merge_exports(&[a, other_plan]).is_err());
        assert!(merge_exports(&[]).is_err());
    }

    fn shard_export(shard: u32, path: &str, export: Export) -> ShardExport {
        ShardExport {
            shard,
            path: PathBuf::from(path),
            export,
        }
    }

    #[test]
    fn merge_conflicts_name_the_offending_shard_and_path() {
        let a = shard_export(
            0,
            "/runs/shard-0.bin",
            Export::new(1, 4, vec![outcome(0), outcome(2)]),
        );
        let overlapping = shard_export(2, "/runs/shard-2.bin", Export::new(1, 4, vec![outcome(2)]));
        match merge_shard_exports(&[a.clone(), overlapping]) {
            Err(CampaignError::MergeConflict { reason }) => assert_eq!(
                reason,
                "job 2 appears in both shard 0 (/runs/shard-0.bin) and shard 2 (/runs/shard-2.bin)"
            ),
            other => panic!("expected a named overlap conflict, got {other:?}"),
        }
        let foreign = shard_export(1, "/runs/shard-1.bin", Export::new(9, 4, vec![outcome(1)]));
        match merge_shard_exports(&[a.clone(), foreign]) {
            Err(CampaignError::MergeConflict { reason }) => {
                assert!(
                    reason.starts_with(
                        "shard 1 (/runs/shard-1.bin) belongs to a different plan than shard 0 (/runs/shard-0.bin)"
                    ),
                    "unexpected plan-mix message: {reason}"
                );
            }
            other => panic!("expected a named plan-mix conflict, got {other:?}"),
        }
        match merge_shard_exports(std::slice::from_ref(&a)) {
            Err(CampaignError::MergeConflict { reason }) => assert_eq!(
                reason,
                "merged exports cover 2 of 4 jobs (job 1 missing, no part owns it)"
            ),
            other => panic!("expected a named gap conflict, got {other:?}"),
        }
    }

    #[test]
    fn partial_merge_reports_gaps_and_recombines_with_the_late_shard() {
        // Shards 0 and 2 of 3 survived; shard 1 (jobs 1 and 4) is missing.
        let survivors = [
            shard_export(
                0,
                "/runs/shard-0.bin",
                Export::new(7, 6, vec![outcome(0), outcome(3)]),
            ),
            shard_export(
                2,
                "/runs/shard-2.bin",
                Export::new(7, 6, vec![outcome(2), outcome(5)]),
            ),
        ];
        let partial = merge_shard_exports_partial(&survivors).expect("gaps are not conflicts");
        assert_eq!(partial.missing_jobs, vec![1, 4]);
        assert_eq!(partial.export.outcomes.len(), 4);
        assert_eq!(partial.export.total_jobs, 6);
        // A later manual run of the missing shard closes the gap: the
        // partial export plus the late shard merge into the full answer.
        let late = shard_export(
            1,
            "/runs/shard-1.bin",
            Export::new(7, 6, vec![outcome(1), outcome(4)]),
        );
        let full = merge_shard_exports(&[
            shard_export(u32::MAX, "/runs/partial.bin", partial.export),
            late,
        ])
        .expect("partial + late shard must merge cleanly");
        assert_eq!(
            full.to_bytes(),
            Export::new(7, 6, (0..6).map(outcome).collect()).to_bytes()
        );
        // Overlap is still a conflict even in partial mode.
        let dup = [
            shard_export(0, "/runs/a.bin", Export::new(7, 6, vec![outcome(0)])),
            shard_export(1, "/runs/b.bin", Export::new(7, 6, vec![outcome(0)])),
        ];
        assert!(merge_shard_exports_partial(&dup).is_err());
    }
}
