//! The long-running campaign daemon: dynamic job intake feeding the
//! `sched`-backed worker pool.
//!
//! [`run_daemon`] is the service half of ROADMAP item 5: instead of a
//! plan fixed up front, jobs arrive *while the campaign runs*, through
//! the [`crate::spool`] drop directory, and are appended to a dynamic
//! (v2) journal as [`crate::journal::JournalRecord::JobAdded`] records.
//! Robustness properties, each pinned by a test:
//!
//! * **Bounded admission.** At most [`DaemonOptions::queue_limit`]
//!   attempts wait in the queue; a submission that would exceed it gets
//!   an explicit `queue-full` response and is *not* journaled — overload
//!   sheds visibly instead of growing an unbounded queue
//!   ([`SpoolResponse::QueueFull`]).
//! * **Exactly-once admission.** Submissions dedupe by
//!   [`crate::spec::JobSpec::digest`]: a resubmitted or re-offered job
//!   answers `duplicate` with the original plan index. Combined with the
//!   journal-append-then-archive intake order, a crash anywhere in
//!   intake re-offers the spool file and dedup absorbs it — at-least-once
//!   offer, exactly-once run.
//! * **Deadlines, not wedges.** With [`DaemonOptions::deadline`] set,
//!   each attempt runs under a watchdog; an overrunning attempt is
//!   abandoned and journaled as [`crate::journal::JournalRecord::TimedOut`]
//!   (burning an attempt, quarantining at the attempt cap) while the
//!   worker moves on.
//! * **Graceful drain.** When [`DaemonOptions::shutdown`] flips (the
//!   binary's SIGTERM handler), intake stops, queued and in-flight jobs
//!   finish, and the run returns with a journal in which every admitted
//!   job has a final fate — exit 0, nothing lost. A SIGKILL instead
//!   resumes from the journal and produces a byte-identical export; the
//!   CI `daemon-drain-resume` job diffs exactly that.
//!
//! Determinism contract: the export is
//! [`Export::new`] over the dynamic plan in journal order with the
//! dynamic plan's own digest, so a daemon campaign's export is
//! byte-identical to `campaign_run` executing the same jobs as a static
//! up-front plan — regardless of thread count, timeouts, crashes, or how
//! ragged the arrival timing was.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use march_test::coverage::panic_message;
use march_test::parallel::max_threads;
use sched::{run_pool, Poll, WorkItem};

use crate::error::CampaignError;
use crate::faultpoint::FaultInjector;
use crate::journal::{JobResult, JobWire, Journal, JournalRecord, Replay};
use crate::output::{Export, JobOutcome, JobStatus};
use crate::runner::execute_job;
use crate::spec::{CampaignPlan, JobSpec};
use crate::spool::{SpoolDir, SpoolResponse};

/// Tuning knobs of a daemon run.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Worker threads draining the job queue.
    pub threads: usize,
    /// Attempts per job before it is quarantined as poison (≥ 1).
    pub max_attempts: u8,
    /// Base retry backoff, linear in the attempt number.
    pub backoff: Duration,
    /// Resume from an existing dynamic journal instead of starting
    /// fresh. A missing journal file falls back to a fresh start.
    pub resume: bool,
    /// Debug: sleep this long at the start of every job.
    pub job_delay: Duration,
    /// Bounded admission queue: submissions beyond this many waiting
    /// attempts are shed with a `queue-full` response.
    pub queue_limit: usize,
    /// Per-attempt deadline; an overrunning attempt is abandoned and
    /// journaled as timed-out. `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Minimum interval between spool scans while idle.
    pub poll_interval: Duration,
    /// Graceful-drain flag (the binary's SIGTERM handler sets it): stop
    /// intake, finish queued and in-flight work, return.
    pub shutdown: Arc<AtomicBool>,
    /// Batch-mode flag: when set, the daemon returns once the spool has
    /// no committed submissions left and all admitted work is done —
    /// "run until the trace is drained" for tests and benches.
    pub quiesce: Arc<AtomicBool>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            threads: max_threads(),
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            resume: false,
            job_delay: Duration::ZERO,
            queue_limit: 64,
            deadline: None,
            poll_interval: Duration::from_millis(2),
            shutdown: Arc::new(AtomicBool::new(false)),
            quiesce: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// What a daemon run did and produced.
#[derive(Debug, Clone)]
pub struct DaemonSummary {
    /// Deterministic per-job outcomes over the dynamic plan, in journal
    /// (admission) order — byte-identical to the equivalent static run.
    pub export: Export,
    /// The dynamic plan as admitted, in journal order.
    pub plan: CampaignPlan,
    /// Submissions admitted (journaled) by *this* invocation.
    pub accepted: usize,
    /// Submissions answered `duplicate`.
    pub duplicates: usize,
    /// Submissions shed with `queue-full`.
    pub shed: usize,
    /// Submissions answered `rejected`.
    pub rejected: usize,
    /// Attempts abandoned at their deadline by this invocation.
    pub timed_out: usize,
    /// Jobs executed to completion by this invocation.
    pub executed: usize,
    /// Jobs already complete in the resumed journal.
    pub skipped: usize,
    /// Retry attempts dispatched by this invocation.
    pub retries: usize,
    /// Quarantined jobs (plan indices), from this run and the journal.
    pub poisoned: Vec<u32>,
    /// `true` when the run ended via the graceful-drain flag.
    pub drained: bool,
}

/// State shared by the daemon's worker pool.
struct Shared {
    /// The dynamic plan, in journal order. Grows under intake.
    plan: Mutex<Vec<JobSpec>>,
    /// Spec digest → plan index, the dedup table.
    digests: Mutex<BTreeMap<u64, u32>>,
    queue: Mutex<VecDeque<(u32, u8)>>,
    journal: Mutex<Journal>,
    results: Mutex<BTreeMap<u32, JobResult>>,
    poisoned: Mutex<BTreeMap<u32, String>>,
    /// Serializes spool scans; holds the idle-poll clock and the intake
    /// ordinal the crash-mid-intake injection runs on.
    intake: Mutex<Intake>,
    in_flight: AtomicUsize,
    abort: Mutex<Option<CampaignError>>,
    abort_flag: AtomicBool,
    accepted: AtomicUsize,
    duplicates: AtomicUsize,
    shed: AtomicUsize,
    rejected: AtomicUsize,
    timed_out: AtomicUsize,
    executed: AtomicUsize,
    retries: AtomicUsize,
}

struct Intake {
    last_scan: Option<Instant>,
    submissions_seen: u64,
}

/// Runs (or resumes) a daemon campaign over `spool`, journaling to
/// `journal_path`, until drained ([`DaemonOptions::shutdown`]) or
/// quiesced ([`DaemonOptions::quiesce`] with an empty spool).
///
/// Fails fast on an unreadable or mismatched journal and on injected
/// crashes; per-job failures are retried and quarantined, not returned
/// as errors.
pub fn run_daemon(
    spool: &SpoolDir,
    journal_path: &Path,
    options: &DaemonOptions,
    injector: &FaultInjector,
) -> Result<DaemonSummary, CampaignError> {
    let (journal, replay) = if options.resume && journal_path.exists() {
        Journal::open_resume_dynamic(journal_path)?
    } else {
        (Journal::create_dynamic(journal_path)?, Replay::default())
    };
    let shared = seed_shared(journal, replay, options, injector)?;
    let skipped = shared.results.lock().expect("results lock").len();

    run_pool(options.threads.max(1), |_| {
        poll_daemon_item(spool, options, injector, &shared)
    });
    if let Some(error) = shared.abort.lock().expect("abort lock").take() {
        return Err(error);
    }

    let plan = CampaignPlan::new(shared.plan.into_inner().expect("plan lock"));
    let results = shared.results.into_inner().expect("results lock");
    let poisoned = shared.poisoned.into_inner().expect("poisoned lock");
    let outcomes = (0..plan.len() as u32)
        .map(|job| {
            if let Some(result) = results.get(&job) {
                Ok(JobOutcome {
                    job,
                    status: JobStatus::Completed,
                    result: *result,
                })
            } else if poisoned.contains_key(&job) {
                Ok(JobOutcome {
                    job,
                    status: JobStatus::Poisoned,
                    result: JobResult {
                        detected: 0,
                        total: 0,
                        mismatches: 0,
                        digest: 0,
                    },
                })
            } else {
                Err(CampaignError::Corrupt {
                    offset: 0,
                    reason: format!("admitted job {job} finished the run unaccounted"),
                })
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DaemonSummary {
        export: Export::new(plan.digest(), plan.len() as u32, outcomes),
        accepted: shared.accepted.load(Ordering::Relaxed),
        duplicates: shared.duplicates.load(Ordering::Relaxed),
        shed: shared.shed.load(Ordering::Relaxed),
        rejected: shared.rejected.load(Ordering::Relaxed),
        timed_out: shared.timed_out.load(Ordering::Relaxed),
        executed: shared.executed.load(Ordering::Relaxed),
        skipped,
        retries: shared.retries.load(Ordering::Relaxed),
        poisoned: poisoned.keys().copied().collect(),
        drained: options.shutdown.load(Ordering::SeqCst),
        plan,
    })
}

/// Builds the shared state from a freshly opened journal: the replayed
/// dynamic plan, the dedup table, and the pending queue (with the same
/// exhausted-attempt quarantine the static runner applies).
fn seed_shared(
    mut journal: Journal,
    replay: Replay,
    options: &DaemonOptions,
    injector: &FaultInjector,
) -> Result<Shared, CampaignError> {
    let mut digests = BTreeMap::new();
    for (index, spec) in replay.dynamic.iter().enumerate() {
        digests.insert(spec.digest(), index as u32);
    }
    let mut poisoned = replay.poisoned;
    let mut pending = VecDeque::new();
    for job in 0..replay.dynamic.len() as u32 {
        if replay.completed.contains_key(&job) || poisoned.contains_key(&job) {
            continue;
        }
        let (used, last_message) = replay
            .failed_attempts
            .get(&job)
            .cloned()
            .unwrap_or((0, String::new()));
        if used >= options.max_attempts {
            journal.append(
                &JournalRecord::Poisoned {
                    job,
                    attempt: used,
                    message: last_message.clone(),
                },
                injector,
            )?;
            poisoned.insert(job, last_message);
        } else {
            pending.push_back((job, used + 1));
        }
    }
    Ok(Shared {
        plan: Mutex::new(replay.dynamic),
        digests: Mutex::new(digests),
        queue: Mutex::new(pending),
        journal: Mutex::new(journal),
        results: Mutex::new(replay.completed),
        poisoned: Mutex::new(poisoned),
        intake: Mutex::new(Intake {
            last_scan: None,
            submissions_seen: 0,
        }),
        in_flight: AtomicUsize::new(0),
        abort: Mutex::new(None),
        abort_flag: AtomicBool::new(false),
        accepted: AtomicUsize::new(0),
        duplicates: AtomicUsize::new(0),
        shed: AtomicUsize::new(0),
        rejected: AtomicUsize::new(0),
        timed_out: AtomicUsize::new(0),
        executed: AtomicUsize::new(0),
        retries: AtomicUsize::new(0),
    })
}

/// The daemon's [`sched::run_pool`] producer: drain the queue first;
/// when it is empty, run one intake scan (unless draining); then decide
/// between [`Poll::Pending`] (work in flight, or still serving) and
/// [`Poll::Done`] (drained or quiesced).
fn poll_daemon_item<'a>(
    spool: &'a SpoolDir,
    options: &'a DaemonOptions,
    injector: &'a FaultInjector,
    shared: &'a Shared,
) -> Poll<'a> {
    if shared.abort_flag.load(Ordering::SeqCst) {
        return Poll::Done;
    }
    let draining = options.shutdown.load(Ordering::SeqCst);
    if !draining {
        if let Err(error) = intake_scan(spool, options, injector, shared) {
            let mut abort = shared.abort.lock().expect("abort lock");
            if abort.is_none() {
                *abort = Some(error);
            }
            shared.abort_flag.store(true, Ordering::SeqCst);
            return Poll::Done;
        }
    }
    let next = {
        let mut queue = shared.queue.lock().expect("queue lock");
        let next = queue.pop_front();
        if next.is_some() {
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
        }
        next
    };
    match next {
        Some((job, attempt)) => Poll::Item(WorkItem::campaign_job(move |_scratch| {
            run_attempt(options, injector, shared, job, attempt);
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        })),
        None if shared.in_flight.load(Ordering::SeqCst) > 0 => Poll::Pending,
        None if draining => Poll::Done,
        None => {
            // Idle with nothing in flight: quiesce mode returns once the
            // spool holds no committed submissions either; service mode
            // keeps polling (run_pool backs off between Pending polls).
            let quiesce = options.quiesce.load(Ordering::SeqCst);
            let spool_empty =
                quiesce && matches!(spool.scan(), Ok(submissions) if submissions.is_empty());
            if spool_empty {
                Poll::Done
            } else {
                Poll::Pending
            }
        }
    }
}

/// One spool scan, rate-limited by [`DaemonOptions::poll_interval`]:
/// every committed submission is admitted, deduped, shed, or rejected,
/// and answered explicitly. Only one worker scans at a time.
fn intake_scan(
    spool: &SpoolDir,
    options: &DaemonOptions,
    injector: &FaultInjector,
    shared: &Shared,
) -> Result<(), CampaignError> {
    let Ok(mut intake) = shared.intake.try_lock() else {
        return Ok(()); // another worker is scanning
    };
    if let Some(last) = intake.last_scan {
        if last.elapsed() < options.poll_interval {
            return Ok(());
        }
    }
    intake.last_scan = Some(Instant::now());
    let submissions = spool.scan()?;
    for submission in submissions {
        let ordinal = intake.submissions_seen;
        intake.submissions_seen += 1;
        // The crash window the issue names: the submission was read from
        // the spool ("spool-accept") but its JobAdded record has not been
        // appended. Dying here must lose nothing — the .job file stays,
        // restart re-offers it.
        if injector.crash_mid_intake(ordinal) {
            return Err(CampaignError::Injected {
                point: format!("crash mid-intake at submission {ordinal}"),
            });
        }
        let response = admit(options, injector, shared, &submission.spec)?;
        match &response {
            SpoolResponse::Accepted { .. } => shared.accepted.fetch_add(1, Ordering::Relaxed),
            SpoolResponse::Duplicate { .. } => shared.duplicates.fetch_add(1, Ordering::Relaxed),
            SpoolResponse::QueueFull => shared.shed.fetch_add(1, Ordering::Relaxed),
            SpoolResponse::Rejected { .. } => shared.rejected.fetch_add(1, Ordering::Relaxed),
        };
        spool.respond(&submission.name, &response)?;
        spool.archive(&submission.name)?;
    }
    Ok(())
}

/// Decides one submission's fate: rejected (unparsable, invalid, or
/// outside the wire catalogs), duplicate (digest already admitted),
/// queue-full (bounded admission), or accepted — in which case the
/// JobAdded record is fsynced to the journal *before* the job becomes
/// visible to workers or the client.
fn admit(
    options: &DaemonOptions,
    injector: &FaultInjector,
    shared: &Shared,
    spec: &Result<JobSpec, String>,
) -> Result<SpoolResponse, CampaignError> {
    let spec = match spec {
        Ok(spec) => spec,
        Err(reason) => {
            return Ok(SpoolResponse::Rejected {
                reason: reason.clone(),
            })
        }
    };
    if let Err(reason) = spec.validate() {
        return Ok(SpoolResponse::Rejected { reason });
    }
    let wire = match JobWire::from_spec(spec) {
        Ok(wire) => wire,
        Err(reason) => return Ok(SpoolResponse::Rejected { reason }),
    };
    let mut digests = shared.digests.lock().expect("digests lock");
    if let Some(&job) = digests.get(&wire.spec_digest) {
        return Ok(SpoolResponse::Duplicate { job });
    }
    let mut queue = shared.queue.lock().expect("queue lock");
    if queue.len() >= options.queue_limit {
        // Shed *before* journaling: a queue-full submission leaves no
        // trace in the plan, so the client can resubmit identical bytes
        // later without tripping dedup.
        return Ok(SpoolResponse::QueueFull);
    }
    let mut journal = shared.journal.lock().expect("journal lock");
    let mut plan = shared.plan.lock().expect("plan lock");
    let job = plan.len() as u32;
    journal.append(&JournalRecord::JobAdded { job, wire }, injector)?;
    plan.push(spec.clone());
    digests.insert(wire.spec_digest, job);
    queue.push_back((job, 1));
    Ok(SpoolResponse::Accepted { job })
}

/// One journaled attempt at one job, run under the deadline watchdog:
/// backoff, panic-isolated execution (abandoned at the deadline), journal
/// append, then completion / retry / quarantine / abort bookkeeping.
fn run_attempt(
    options: &DaemonOptions,
    injector: &FaultInjector,
    shared: &Shared,
    job: u32,
    attempt: u8,
) {
    if attempt > 1 {
        thread::sleep(options.backoff * u32::from(attempt - 1));
    }
    let spec = shared.plan.lock().expect("plan lock")[job as usize].clone();
    let outcome = attempt_with_deadline(&spec, job, attempt, options, injector);
    let timed_out = matches!(outcome, AttemptOutcome::TimedOut);
    let final_attempt = attempt >= options.max_attempts;
    let appended = {
        let mut journal = shared.journal.lock().expect("journal lock");
        let result = match &outcome {
            AttemptOutcome::Finished(Ok(result)) => journal.append(
                &JournalRecord::Completed {
                    job,
                    attempt,
                    result: *result,
                },
                injector,
            ),
            AttemptOutcome::Finished(Err(message)) if !final_attempt => journal.append(
                &JournalRecord::Failed {
                    job,
                    attempt,
                    message: message.clone(),
                },
                injector,
            ),
            AttemptOutcome::Finished(Err(message)) => journal.append(
                &JournalRecord::Poisoned {
                    job,
                    attempt,
                    message: message.clone(),
                },
                injector,
            ),
            AttemptOutcome::TimedOut => {
                // The timeout is its own record kind; at the attempt cap
                // the quarantine record follows so the job's fate is
                // final in the journal, same as an ordinary failure.
                let message = timeout_message(options);
                journal
                    .append(
                        &JournalRecord::TimedOut {
                            job,
                            attempt,
                            message: message.clone(),
                        },
                        injector,
                    )
                    .and_then(|()| {
                        if final_attempt {
                            journal.append(
                                &JournalRecord::Poisoned {
                                    job,
                                    attempt,
                                    message,
                                },
                                injector,
                            )
                        } else {
                            Ok(())
                        }
                    })
            }
        };
        result.and_then(|()| {
            if injector.should_abort(journal.records_written()) {
                Err(CampaignError::Injected {
                    point: format!("abort after {} records", journal.records_written()),
                })
            } else {
                Ok(())
            }
        })
    };
    match appended {
        Ok(()) => {
            if timed_out {
                shared.timed_out.fetch_add(1, Ordering::Relaxed);
            }
            match outcome {
                AttemptOutcome::Finished(Ok(result)) => {
                    shared
                        .results
                        .lock()
                        .expect("results lock")
                        .insert(job, result);
                    shared.executed.fetch_add(1, Ordering::Relaxed);
                }
                AttemptOutcome::Finished(Err(message)) if final_attempt => {
                    shared
                        .poisoned
                        .lock()
                        .expect("poisoned lock")
                        .insert(job, message);
                }
                AttemptOutcome::TimedOut if final_attempt => {
                    shared
                        .poisoned
                        .lock()
                        .expect("poisoned lock")
                        .insert(job, timeout_message(options));
                }
                AttemptOutcome::Finished(Err(_)) | AttemptOutcome::TimedOut => {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    shared
                        .queue
                        .lock()
                        .expect("queue lock")
                        .push_back((job, attempt + 1));
                }
            }
        }
        Err(error) => {
            // Injected crash (or real I/O failure): stop without
            // recording the in-memory outcome — exactly what dying
            // mid-append loses.
            let mut abort = shared.abort.lock().expect("abort lock");
            if abort.is_none() {
                *abort = Some(error);
            }
            shared.abort_flag.store(true, Ordering::SeqCst);
        }
    }
}

/// How one attempt ended.
enum AttemptOutcome {
    /// The attempt ran to an end: a result or a failure message.
    Finished(Result<JobResult, String>),
    /// The attempt overran its deadline and was abandoned.
    TimedOut,
}

/// Runs one attempt, under a watchdog when a deadline is configured: the
/// job executes on a helper thread; if it misses the deadline the helper
/// is abandoned (its eventual result lands in a closed channel) and the
/// attempt reports [`AttemptOutcome::TimedOut`] — the worker slot is
/// never wedged by a slow job.
fn attempt_with_deadline(
    spec: &JobSpec,
    job: u32,
    attempt: u8,
    options: &DaemonOptions,
    injector: &FaultInjector,
) -> AttemptOutcome {
    let Some(deadline) = options.deadline else {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            execute_job(spec, job, attempt, options.job_delay, injector)
        }));
        return AttemptOutcome::Finished(flatten_caught(caught));
    };
    let (sender, receiver) = mpsc::channel();
    let spec = spec.clone();
    let injector = injector.clone();
    let job_delay = options.job_delay;
    thread::spawn(move || {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            execute_job(&spec, job, attempt, job_delay, &injector)
        }));
        // The receiver may be long gone (deadline missed) — that is the
        // abandonment working, not an error.
        let _ = sender.send(flatten_caught(caught));
    });
    match receiver.recv_timeout(deadline) {
        Ok(outcome) => AttemptOutcome::Finished(outcome),
        Err(_) => AttemptOutcome::TimedOut,
    }
}

/// Collapses a `catch_unwind` of [`execute_job`] into the journaled form.
fn flatten_caught(
    caught: Result<Result<JobResult, String>, Box<dyn std::any::Any + Send>>,
) -> Result<JobResult, String> {
    match caught {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(message)) => Err(message),
        Err(payload) => Err(panic_message(&*payload)),
    }
}

/// The journaled message for a missed deadline.
fn timeout_message(options: &DaemonOptions) -> String {
    let ms = options.deadline.map(|d| d.as_millis()).unwrap_or(0);
    format!("deadline {ms}ms exceeded; attempt abandoned")
}

/// Convenience for tests and the binary: a daemon options value whose
/// `shutdown`/`quiesce` flags are owned by the caller.
pub fn daemon_flags() -> (Arc<AtomicBool>, Arc<AtomicBool>) {
    (
        Arc::new(AtomicBool::new(false)),
        Arc::new(AtomicBool::new(false)),
    )
}
