//! The panic-isolated campaign worker pool.
//!
//! [`run_campaign`] drains a shard's job queue through the workspace's
//! unified scheduler ([`sched::run_pool`]): the retry queue acts as an
//! open-ended producer that wraps each pending attempt in a
//! [`sched::WorkItem::campaign_job`] and answers [`sched::Poll::Pending`]
//! while attempts are in flight elsewhere (an in-flight job may fail and
//! re-enqueue itself). Each job executes inside `catch_unwind`, so a
//! panicking fault model (or an injected worker kill) costs *one attempt
//! at one job* — the worker survives, journals a failure record,
//! re-enqueues the job with bounded backoff, and quarantines it as poison
//! after [`CampaignOptions::max_attempts`] attempts with the panic
//! payload recorded.
//!
//! Determinism contract: a job's result depends only on its
//! [`crate::spec::JobSpec`] — never on scheduling — and the export is
//! assembled from per-job results sorted by plan index. An interrupted
//! and resumed campaign therefore produces an export byte-identical to an
//! uninterrupted one, at any thread count; the fault-injection tests pin
//! exactly that.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use march_test::address_order::order_by_name;
use march_test::coverage::{evaluate_coverage_interned_caught, panic_message, SweepOptions};
use march_test::fault_sim::DetectionMode;
use march_test::library::algorithm_by_name;
use march_test::parallel::max_threads;
use sched::{run_pool, Poll, WorkItem};
use sram_model::config::ArrayOrganization;

use crate::error::CampaignError;
use crate::faultpoint::{detonate_factories, FaultInjector};
use crate::heartbeat::HeartbeatWriter;
use crate::journal::{JobResult, Journal, JournalRecord, Replay};
use crate::output::{Export, JobOutcome, JobStatus};
use crate::shard::Shard;
use crate::spec::{CampaignPlan, JobSpec};

/// Tuning knobs of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads draining the job queue.
    pub threads: usize,
    /// Attempts per job before it is quarantined as poison (≥ 1).
    pub max_attempts: u8,
    /// Base retry backoff: attempt `n + 1` waits `backoff × n` before
    /// re-executing (bounded by `max_attempts`).
    pub backoff: Duration,
    /// Resume from an existing journal instead of starting fresh. A
    /// missing journal file falls back to a fresh start.
    pub resume: bool,
    /// Debug: sleep this long at the start of every job (lets the CI
    /// smoke test kill a campaign reliably mid-run). Does not affect
    /// results.
    pub job_delay: Duration,
    /// Heartbeat sidecar file for a supervising process: written at
    /// campaign start and after every journal append
    /// ([`crate::heartbeat`]). `None` (the default) skips heartbeats
    /// entirely — unsupervised campaigns pay nothing.
    pub heartbeat: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            threads: max_threads(),
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            resume: false,
            job_delay: Duration::ZERO,
            heartbeat: None,
        }
    }
}

/// What a campaign run did and produced.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// The deterministic per-job outcomes (every owned job, sorted).
    pub export: Export,
    /// Jobs executed to completion by *this* invocation.
    pub executed: usize,
    /// Jobs skipped because the resumed journal already completed them.
    pub skipped: usize,
    /// Retry attempts dispatched by this invocation.
    pub retries: usize,
    /// Quarantined jobs (plan indices), from this run and the journal.
    pub poisoned: Vec<u32>,
}

/// Runs (or resumes) one shard of a campaign, journaling per-job results
/// to `journal_path`.
///
/// Fails fast on an invalid plan, an unreadable or mismatched journal, or
/// an injected abort; per-job failures are retried and quarantined, not
/// returned as errors.
pub fn run_campaign(
    plan: &CampaignPlan,
    shard: Shard,
    journal_path: &Path,
    options: &CampaignOptions,
    injector: &FaultInjector,
) -> Result<CampaignSummary, CampaignError> {
    plan.validate()?;
    let owned = shard.jobs(plan.len() as u32);
    if owned.is_empty() {
        return Err(CampaignError::EmptyPlan);
    }
    let digest = plan.digest();
    let (mut journal, replay) = if options.resume && journal_path.exists() {
        Journal::open_resume(journal_path, plan.len() as u32, digest)?
    } else {
        (
            Journal::create(journal_path, plan.len() as u32, digest)?,
            Replay::default(),
        )
    };

    let results = replay.completed;
    let mut poisoned = replay.poisoned;
    let skipped = results.len();
    let mut pending = VecDeque::new();
    for &job in &owned {
        if results.contains_key(&job) || poisoned.contains_key(&job) {
            continue;
        }
        let (used, last_message) = replay
            .failed_attempts
            .get(&job)
            .cloned()
            .unwrap_or((0, String::new()));
        if used >= options.max_attempts {
            // The journal burned every attempt but died before writing
            // the poison record: quarantine now.
            journal.append(
                &JournalRecord::Poisoned {
                    job,
                    attempt: used,
                    message: last_message.clone(),
                },
                injector,
            )?;
            poisoned.insert(job, last_message);
        } else {
            pending.push_back((job, used + 1));
        }
    }

    // The campaign-start beat goes out before any worker spawns, so a
    // supervisor sees liveness while the first (possibly slow) job runs.
    let heartbeat = match &options.heartbeat {
        Some(path) => Some(Mutex::new(HeartbeatWriter::create(path)?)),
        None => None,
    };
    let shared = Shared {
        queue: Mutex::new(pending),
        journal: Mutex::new(journal),
        results: Mutex::new(results),
        poisoned: Mutex::new(poisoned),
        heartbeat,
        jobs_done: AtomicU64::new(0),
        in_flight: AtomicUsize::new(0),
        abort: Mutex::new(None),
        abort_flag: AtomicBool::new(false),
        executed: AtomicUsize::new(0),
        retries: AtomicUsize::new(0),
    };
    let workers = options
        .threads
        .clamp(1, shared.queue.lock().expect("queue lock").len().max(1));
    run_pool(workers, |_| {
        poll_campaign_item(plan, options, injector, &shared)
    });
    if let Some(error) = shared.abort.lock().expect("abort lock").take() {
        return Err(error);
    }

    let results = shared.results.into_inner().expect("results lock");
    let poisoned = shared.poisoned.into_inner().expect("poisoned lock");
    let outcomes = owned
        .iter()
        .map(|&job| {
            if let Some(result) = results.get(&job) {
                Ok(JobOutcome {
                    job,
                    status: JobStatus::Completed,
                    result: *result,
                })
            } else if poisoned.contains_key(&job) {
                Ok(JobOutcome {
                    job,
                    status: JobStatus::Poisoned,
                    // All-zero result: the export must not depend on
                    // which attempt's message happened to be last.
                    result: JobResult {
                        detected: 0,
                        total: 0,
                        mismatches: 0,
                        digest: 0,
                    },
                })
            } else {
                Err(CampaignError::Corrupt {
                    offset: 0,
                    reason: format!("job {job} finished the run unaccounted"),
                })
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignSummary {
        export: Export::new(digest, plan.len() as u32, outcomes),
        executed: shared.executed.load(Ordering::Relaxed),
        skipped,
        retries: shared.retries.load(Ordering::Relaxed),
        poisoned: poisoned.keys().copied().collect(),
    })
}

/// State shared by the worker pool.
struct Shared {
    queue: Mutex<VecDeque<(u32, u8)>>,
    journal: Mutex<Journal>,
    results: Mutex<BTreeMap<u32, JobResult>>,
    poisoned: Mutex<BTreeMap<u32, String>>,
    heartbeat: Option<Mutex<HeartbeatWriter>>,
    /// Job attempts journaled so far — the clock the heartbeat-stall and
    /// wedge injections run on.
    jobs_done: AtomicU64,
    in_flight: AtomicUsize,
    abort: Mutex<Option<CampaignError>>,
    abort_flag: AtomicBool,
    executed: AtomicUsize,
    retries: AtomicUsize,
}

/// The campaign's [`sched::run_pool`] producer: pop the next pending
/// attempt and wrap it as a [`WorkItem::campaign_job`], answer
/// [`Poll::Pending`] while the queue is empty but attempts are in flight
/// (an in-flight job may fail and re-enqueue itself), and [`Poll::Done`]
/// once the queue is drained or the campaign aborted.
fn poll_campaign_item<'a>(
    plan: &'a CampaignPlan,
    options: &'a CampaignOptions,
    injector: &'a FaultInjector,
    shared: &'a Shared,
) -> Poll<'a> {
    if shared.abort_flag.load(Ordering::SeqCst) {
        return Poll::Done;
    }
    if injector.wedge_armed(shared.jobs_done.load(Ordering::SeqCst)) {
        // Injected wedge: the process stays alive but stops making
        // progress — no heartbeat, no journal growth, workers parked.
        // Only an external SIGKILL (the supervisor's stall timeout)
        // recovers a child in this state.
        loop {
            thread::sleep(Duration::from_millis(25));
        }
    }
    let next = {
        let mut queue = shared.queue.lock().expect("queue lock");
        let next = queue.pop_front();
        if next.is_some() {
            shared.in_flight.fetch_add(1, Ordering::SeqCst);
        }
        next
    };
    match next {
        Some((job, attempt)) => Poll::Item(WorkItem::campaign_job(move |_scratch| {
            run_attempt(plan, options, injector, shared, job, attempt);
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        })),
        None if shared.in_flight.load(Ordering::SeqCst) > 0 => Poll::Pending,
        None => Poll::Done,
    }
}

/// One journaled attempt at one job: backoff, panic-isolated execution,
/// journal append, then completion / retry re-enqueue / poison
/// quarantine / abort bookkeeping.
fn run_attempt(
    plan: &CampaignPlan,
    options: &CampaignOptions,
    injector: &FaultInjector,
    shared: &Shared,
    job: u32,
    attempt: u8,
) {
    if attempt > 1 {
        // Bounded backoff: linear in the attempt number, capped by
        // max_attempts.
        thread::sleep(options.backoff * u32::from(attempt - 1));
    }
    let spec = &plan.jobs[job as usize];
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute_job(spec, job, attempt, options.job_delay, injector)
    }));
    // A panic anywhere in the job — fault model, kernel, injected
    // worker kill — collapses to a failure message; the worker
    // itself survives.
    let outcome: Result<JobResult, String> = match outcome {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(message)) => Err(message),
        Err(payload) => Err(panic_message(&*payload)),
    };
    let appended = {
        let mut journal = shared.journal.lock().expect("journal lock");
        let record = match &outcome {
            Ok(result) => JournalRecord::Completed {
                job,
                attempt,
                result: *result,
            },
            Err(message) if attempt < options.max_attempts => JournalRecord::Failed {
                job,
                attempt,
                message: message.clone(),
            },
            Err(message) => JournalRecord::Poisoned {
                job,
                attempt,
                message: message.clone(),
            },
        };
        journal.append(&record, injector).and_then(|()| {
            // Beat between jobs, while the journal lock still pins the
            // record count the beat reports. The stall injection
            // silences the beat without touching the work.
            let jobs_done = shared.jobs_done.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(heartbeat) = &shared.heartbeat {
                if !injector.heartbeat_stalled(jobs_done) {
                    heartbeat
                        .lock()
                        .expect("heartbeat lock")
                        .beat(journal.records_written())?;
                }
            }
            if injector.should_abort(journal.records_written()) {
                Err(CampaignError::Injected {
                    point: format!("abort after {} records", journal.records_written()),
                })
            } else {
                Ok(())
            }
        })
    };
    match appended {
        Ok(()) => match outcome {
            Ok(result) => {
                shared
                    .results
                    .lock()
                    .expect("results lock")
                    .insert(job, result);
                shared.executed.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                if attempt < options.max_attempts {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    shared
                        .queue
                        .lock()
                        .expect("queue lock")
                        .push_back((job, attempt + 1));
                } else {
                    shared
                        .poisoned
                        .lock()
                        .expect("poisoned lock")
                        .insert(job, message);
                }
            }
        },
        Err(error) => {
            // Injected crash (or real I/O failure): stop the
            // campaign without recording the in-memory outcome —
            // exactly what dying mid-append loses.
            let mut abort = shared.abort.lock().expect("abort lock");
            if abort.is_none() {
                *abort = Some(error);
            }
            shared.abort_flag.store(true, Ordering::SeqCst);
        }
    }
}

/// Executes one job directly — no journal, no worker pool, no retries.
///
/// This is the raw per-job path the campaign machinery wraps; the bench
/// harness times it as the overhead-free baseline the campaign's jobs/sec
/// is gated against.
///
/// # Errors
///
/// Returns the same failure message a campaign worker would journal.
pub fn run_job(spec: &JobSpec) -> Result<JobResult, String> {
    execute_job(spec, 0, 1, Duration::ZERO, &FaultInjector::none())
}

/// Executes one job attempt: resolve the spec, build the population,
/// sweep, digest. Returns a message (for the journal) on any failure;
/// panics escape to the worker's `catch_unwind`. Also the daemon's
/// per-attempt workhorse, run under its deadline watchdog.
pub(crate) fn execute_job(
    spec: &JobSpec,
    job: u32,
    attempt: u8,
    job_delay: Duration,
    injector: &FaultInjector,
) -> Result<JobResult, String> {
    injector.check_worker_kill(job, attempt);
    if let Some(stall) = injector.job_stall(job, attempt) {
        // Injected stall: the job is healthy but slow — deadline-storm
        // fuel. The result is unchanged once the stall passes.
        thread::sleep(stall);
    }
    if !job_delay.is_zero() {
        thread::sleep(job_delay);
    }
    let organization =
        ArrayOrganization::new(spec.rows, spec.cols).map_err(|error| error.to_string())?;
    let test = algorithm_by_name(&spec.algorithm)
        .ok_or_else(|| format!("unknown algorithm \"{}\"", spec.algorithm))?;
    let order = order_by_name(&spec.order, spec.seed)
        .ok_or_else(|| format!("unknown address order \"{}\"", spec.order))?;
    let mut factories = spec.population.build(&organization, spec.seed)?;
    if injector.lane_panic_armed(job, attempt) {
        factories = detonate_factories(factories);
    }
    let sweep = SweepOptions {
        background: spec.background,
        mode: DetectionMode::Full,
        // Campaign parallelism is across jobs; each sweep stays serial so
        // worker threads do not oversubscribe the machine.
        parallel: false,
        backend: spec.backend,
    };
    // The interned sweep: same kernel, same digest bit-for-bit, but one
    // name string per fault instead of three fat outcome strings — the
    // journal only ever wants the counts and the fingerprint.
    let report =
        evaluate_coverage_interned_caught(&test, order.as_ref(), &organization, &factories, sweep)
            .map_err(|panic| panic.to_string())?;
    Ok(JobResult {
        detected: report.detected() as u32,
        total: report.total() as u32,
        mismatches: report.total_mismatches(),
        digest: report.digest(),
    })
}
