//! Per-shard heartbeat sidecar files — the liveness half of the
//! supervision protocol.
//!
//! A shard runner writes its heartbeat file when the campaign starts and
//! again after every journal append ("between jobs"), so a supervisor
//! polling the file can tell a *working* child from a *wedged* one
//! without any IPC channel: if neither the heartbeat nor the journal has
//! advanced within the stall timeout, the child is making no progress
//! and can be killed and restarted.
//!
//! The wire form is one ASCII line, `CHB1 <beats> <records>\n`, where
//! `beats` is a monotonically increasing counter and `records` is the
//! journal's record count at the time of the beat. Each beat is written
//! to a sibling temp file and `rename(2)`d into place, so a reader never
//! observes a torn heartbeat — it sees the old beat or the new one.
//! A missing or unparsable file reads as "no heartbeat yet"
//! ([`read_heartbeat`] returns `None`); the supervisor treats that the
//! same as a stalled one once the timeout passes.

use std::path::{Path, PathBuf};

use crate::error::CampaignError;

/// Magic token opening every heartbeat line.
pub const HEARTBEAT_MAGIC: &str = "CHB1";

/// What a supervisor learns from one read of a heartbeat file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeartbeatSnapshot {
    /// Monotonic beat counter (1 is the campaign-start beat).
    pub beats: u64,
    /// Journal records written as of this beat.
    pub records: u64,
}

/// The runner's side of the protocol: owns the sidecar path and the
/// beat counter.
#[derive(Debug)]
pub struct HeartbeatWriter {
    path: PathBuf,
    tmp: PathBuf,
    beats: u64,
}

impl HeartbeatWriter {
    /// Creates the writer and emits the campaign-start beat (beat 1), so
    /// a supervisor sees liveness before the first job completes.
    pub fn create(path: &Path) -> Result<Self, CampaignError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let mut writer = Self {
            path: path.to_path_buf(),
            tmp: PathBuf::from(tmp),
            beats: 0,
        };
        writer.beat(0)?;
        Ok(writer)
    }

    /// Emits one beat carrying the journal's current record count. The
    /// beat is written to a temp file and renamed into place, so readers
    /// never see a torn line.
    pub fn beat(&mut self, records: u64) -> Result<(), CampaignError> {
        self.beats += 1;
        let line = format!("{HEARTBEAT_MAGIC} {} {records}\n", self.beats);
        std::fs::write(&self.tmp, line.as_bytes()).map_err(|error| {
            CampaignError::io(format!("write heartbeat {:?}", self.tmp), &error)
        })?;
        std::fs::rename(&self.tmp, &self.path).map_err(|error| {
            CampaignError::io(format!("publish heartbeat {:?}", self.path), &error)
        })
    }

    /// Beats emitted so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }
}

/// Reads a heartbeat file; `None` when the file is missing or does not
/// parse (a child that has not started, or a truncated write by a
/// foreign tool — both read as "no heartbeat").
pub fn read_heartbeat(path: &Path) -> Option<HeartbeatSnapshot> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut fields = text.split_ascii_whitespace();
    if fields.next() != Some(HEARTBEAT_MAGIC) {
        return None;
    }
    let beats: u64 = fields.next()?.parse().ok()?;
    let records: u64 = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None;
    }
    Some(HeartbeatSnapshot { beats, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "campaign-hb-{tag}-{}-{unique}.hb",
            std::process::id()
        ))
    }

    #[test]
    fn beats_round_trip_and_count_monotonically() {
        let path = temp_path("roundtrip");
        let mut writer = HeartbeatWriter::create(&path).expect("create");
        assert_eq!(
            read_heartbeat(&path),
            Some(HeartbeatSnapshot {
                beats: 1,
                records: 0
            }),
            "create emits the campaign-start beat"
        );
        writer.beat(3).expect("beat");
        writer.beat(7).expect("beat");
        assert_eq!(
            read_heartbeat(&path),
            Some(HeartbeatSnapshot {
                beats: 3,
                records: 7
            })
        );
        assert_eq!(writer.beats(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_mangled_heartbeats_read_as_none() {
        let path = temp_path("mangled");
        assert_eq!(read_heartbeat(&path), None, "missing file");
        for bad in ["", "CHB1", "CHB1 x 2\n", "NOPE 1 2\n", "CHB1 1 2 3\n"] {
            std::fs::write(&path, bad).unwrap();
            assert_eq!(read_heartbeat(&path), None, "{bad:?} must not parse");
        }
        std::fs::remove_file(&path).ok();
    }
}
