//! Crash-safe campaign runner for March fault-simulation sweeps.
//!
//! The ROADMAP's "millions of devices" story needs sweeps that run for
//! hours across processes and machines — which is only useful if the
//! layer *survives*: worker panics, SIGKILL mid-run, torn journal writes,
//! corrupted tail records. This crate is that layer, built
//! robustness-first on top of the `march-test` kernel:
//!
//! * [`spec`] — campaign plans: ordered job lists
//!   (`organization × seed × algorithm × order × background × backend ×
//!   population`), digest-pinned so a resumed journal can prove it
//!   belongs to the plan being run, validated up-front so a typo fails in
//!   milliseconds instead of poisoning jobs one retry at a time.
//! * [`shard`] — round-robin shard planning: `index/count` splits one
//!   plan across independent processes, each with its own journal and
//!   partial export; [`output::merge_exports`] recombines them.
//! * [`runner`] — the panic-isolated worker pool: every job attempt runs
//!   inside `catch_unwind`, failures are journaled and retried with
//!   bounded backoff, and jobs that exhaust their attempts are
//!   quarantined as *poison* with the panic payload recorded.
//! * [`journal`] — the append-only binary journal: fixed-width 64-byte
//!   records, per-record FNV-1a checksum, no serde (the build is
//!   offline). Resume replays the journal, truncates any torn or corrupt
//!   tail, skips completed jobs and re-dispatches the rest.
//! * [`output`] — deterministic exports: per-job results sorted by plan
//!   index with a whole-file digest, byte-identical across thread counts
//!   and interrupt/resume cycles.
//! * [`faultpoint`] — the deterministic fault-injection harness that
//!   *proves* the above: worker kills, lane-model panics inside the
//!   batched kernel, torn journal writes, flipped bytes and
//!   abort-after-N-records, each at exact (job, attempt) or record
//!   coordinates. The integration tests interrupt a campaign at every
//!   injection point, resume it, and require the export to match the
//!   uninterrupted run byte for byte.
//!
//! On top of the fixed-plan runner sits the long-running service half
//! (ROADMAP item 5's "serves heavy traffic"):
//!
//! * [`spool`] — the atomic tmp+rename job-intake drop directory, with
//!   explicit per-submission responses (accepted / duplicate /
//!   queue-full / rejected) so overload sheds visibly instead of growing
//!   an unbounded queue.
//! * [`trace`] — recorded arrival traces and their open-loop replay, the
//!   overload harness.
//! * [`daemon`] — the intake loop itself: journal v2 dynamic-plan
//!   appends, bounded admission, per-job deadlines that journal a
//!   `timed-out` fate, SIGTERM graceful drain, SIGKILL crash-resume.
//!
//! The `campaign_run` and `campaign_daemon` binaries drive all of this
//! from the command line; see `crates/campaign/README.md` for the journal
//! wire format, resume semantics and the poison-quarantine policy.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod error;
pub mod faultpoint;
pub mod heartbeat;
pub mod journal;
pub mod output;
pub mod runner;
pub mod shard;
pub mod spec;
pub mod spool;
pub mod supervise;
pub mod trace;

pub use daemon::{run_daemon, DaemonOptions, DaemonSummary};
pub use error::CampaignError;
pub use faultpoint::{FaultInjector, Injection, ProcessInjection, ProcessInjector};
pub use heartbeat::{read_heartbeat, HeartbeatSnapshot, HeartbeatWriter};
pub use journal::{JobResult, JobWire, Journal, JournalRecord, Replay};
pub use output::{
    merge_exports, merge_shard_exports, merge_shard_exports_partial, Export, JobOutcome, JobStatus,
    PartialMerge, ShardExport,
};
pub use runner::{run_campaign, run_job, CampaignOptions, CampaignSummary};
pub use shard::Shard;
pub use spec::{CampaignPlan, JobSpec, PopulationSpec};
pub use spool::{SpoolDir, SpoolResponse, Submission};
pub use supervise::{supervise, ShardCommand, ShardFate, SupervisorOptions, SupervisorReport};
pub use trace::{load_trace, parse_trace, replay_trace, replay_trace_injected, TraceEvent};
