//! Campaign plans: what to run.
//!
//! A [`CampaignPlan`] is an ordered list of [`JobSpec`]s — one sweep each,
//! fully described by value: `(organization, population seed, algorithm,
//! address order, background, backend, population profile)`. The plan is
//! pure data; executing it is [`crate::runner`]'s job. Two properties
//! matter for crash safety:
//!
//! * **Job identity is positional.** The journal refers to jobs by their
//!   index in the plan, so a resumed run must present *the same plan in
//!   the same order*. [`CampaignPlan::digest`] pins that: the digest is
//!   written into the journal header and checked on resume.
//! * **Validation is up-front.** [`CampaignPlan::validate`] rejects every
//!   job whose names do not resolve or whose population would be empty
//!   *before* any worker starts, so a typo fails the run in milliseconds
//!   instead of poisoning jobs one retry at a time.

use march_test::coverage::SweepBackend;
use march_test::faultgen::FaultGen;
use march_test::faults::{standard_fault_list, FaultFactory};
use march_test::library::{algorithm_by_name, all_algorithms};
use march_test::{address_order::order_by_name, rng::Fnv1a};
use sram_model::config::ArrayOrganization;

use crate::error::CampaignError;

/// The address-order catalog, in wire-index order.
///
/// Journal v2 dynamic-plan records store a job's address order as an
/// index into this list (names are too long for a fixed 64-byte record),
/// so the list order is part of the journal wire format: entries may be
/// appended but never reordered or removed. Each record also carries the
/// job's field digest, which covers the *name* — a resumed journal whose
/// catalog drifted fails loudly instead of running the wrong order.
pub const ORDER_CATALOG: [&str; 5] = [
    "word line after word line",
    "column major",
    "linear",
    "pseudo-random",
    "address complement",
];

/// The algorithm catalog, in wire-index order — every library algorithm
/// name, in [`all_algorithms`] order. Subject to the same
/// append-only rule as [`ORDER_CATALOG`], and pinned the same way by the
/// per-record job digest.
pub fn algorithm_catalog() -> Vec<String> {
    all_algorithms()
        .iter()
        .map(|test| test.name().to_string())
        .collect()
}

/// Resolves a sweep-backend name as used by `campaign_run --backend` and
/// the spool job format.
pub fn backend_by_name(name: &str) -> Option<SweepBackend> {
    match name {
        "lane" => Some(SweepBackend::LaneBatched),
        "list-order" => Some(SweepBackend::LaneBatchedListOrder),
        "per-fault" => Some(SweepBackend::PerFault),
        _ => None,
    }
}

/// Stable textual form of a sweep backend, the inverse of
/// [`backend_by_name`].
pub fn backend_name(backend: SweepBackend) -> &'static str {
    match backend {
        SweepBackend::LaneBatched => "lane",
        SweepBackend::LaneBatchedListOrder => "list-order",
        SweepBackend::PerFault => "per-fault",
    }
}

/// Which fault population a job sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationSpec {
    /// The standard 48-fault characterisation list
    /// ([`standard_fault_list`]) — seed-independent.
    Standard,
    /// `count` uniformly mixed faults ([`FaultGen::try_mixed`]).
    Mixed {
        /// Number of faults to generate.
        count: usize,
    },
    /// A dense blended profile sized to `target` faults
    /// ([`FaultGen::try_dense_profile`]).
    Dense {
        /// Target number of faults.
        target: usize,
    },
}

impl PopulationSpec {
    /// Parses `"standard"`, `"mixed:N"` or `"dense:N"`.
    ///
    /// # Examples
    ///
    /// ```
    /// use campaign::PopulationSpec;
    ///
    /// assert_eq!(PopulationSpec::parse("standard"), Some(PopulationSpec::Standard));
    /// assert_eq!(
    ///     PopulationSpec::parse("mixed:600"),
    ///     Some(PopulationSpec::Mixed { count: 600 }),
    /// );
    /// assert_eq!(
    ///     PopulationSpec::parse("dense:100000"),
    ///     Some(PopulationSpec::Dense { target: 100_000 }),
    /// );
    /// // Unknown profiles and malformed counts are rejected, and
    /// // `render` is the exact inverse of `parse`.
    /// assert_eq!(PopulationSpec::parse("sparse:7"), None);
    /// assert_eq!(PopulationSpec::parse("mixed:many"), None);
    /// let spec = PopulationSpec::parse("mixed:600").unwrap();
    /// assert_eq!(spec.render(), "mixed:600");
    /// ```
    pub fn parse(spec: &str) -> Option<Self> {
        if spec == "standard" {
            return Some(Self::Standard);
        }
        let (profile, count) = spec.split_once(':')?;
        let count: usize = count.parse().ok()?;
        match profile {
            "mixed" => Some(Self::Mixed { count }),
            "dense" => Some(Self::Dense { target: count }),
            _ => None,
        }
    }

    /// Stable textual form, the inverse of [`PopulationSpec::parse`].
    pub fn render(&self) -> String {
        match self {
            Self::Standard => "standard".to_string(),
            Self::Mixed { count } => format!("mixed:{count}"),
            Self::Dense { target } => format!("dense:{target}"),
        }
    }

    /// Generates the population for `organization`/`seed`, or explains
    /// why the configuration is rejected.
    pub fn build(
        &self,
        organization: &ArrayOrganization,
        seed: u64,
    ) -> Result<Vec<FaultFactory>, String> {
        match self {
            Self::Standard => Ok(standard_fault_list(organization)),
            Self::Mixed { count } => FaultGen::new(*organization, seed)
                .try_mixed(*count)
                .map_err(|error| error.to_string()),
            Self::Dense { target } => FaultGen::new(*organization, seed)
                .try_dense_profile(*target)
                .map(|population| population.factories)
                .map_err(|error| error.to_string()),
        }
    }
}

/// One campaign job: everything one sweep needs, by value.
///
/// # Examples
///
/// ```
/// use campaign::{JobSpec, PopulationSpec};
/// use march_test::coverage::SweepBackend;
///
/// let job = JobSpec {
///     rows: 64,
///     cols: 64,
///     seed: 1,
///     algorithm: "March C-".to_string(),
///     order: "word line after word line".to_string(),
///     background: false,
///     backend: SweepBackend::LaneBatched,
///     population: PopulationSpec::Mixed { count: 600 },
/// };
/// assert!(job.validate().is_ok());
///
/// // Validation resolves names up-front, so a typo fails the plan in
/// // milliseconds instead of poisoning jobs one retry at a time.
/// let mut typo = job.clone();
/// typo.algorithm = "March Nope".to_string();
/// assert!(typo.validate().unwrap_err().contains("unknown algorithm"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Word lines of the array.
    pub rows: u32,
    /// Bit lines of the array.
    pub cols: u32,
    /// Population seed (also seeds the pseudo-random address order).
    pub seed: u64,
    /// Algorithm name, resolved through [`algorithm_by_name`].
    pub algorithm: String,
    /// Address-order name, resolved through [`order_by_name`].
    pub order: String,
    /// Initial cell value of every simulation.
    pub background: bool,
    /// Sweep engine for this job.
    pub backend: SweepBackend,
    /// Fault population profile.
    pub population: PopulationSpec,
}

impl JobSpec {
    /// Checks that the job can execute: the organization constructs, the
    /// algorithm and order names resolve, and the population profile is
    /// non-empty and fits the array.
    pub fn validate(&self) -> Result<(), String> {
        let organization =
            ArrayOrganization::new(self.rows, self.cols).map_err(|error| error.to_string())?;
        if algorithm_by_name(&self.algorithm).is_none() {
            return Err(format!("unknown algorithm \"{}\"", self.algorithm));
        }
        if order_by_name(&self.order, self.seed).is_none() {
            return Err(format!("unknown address order \"{}\"", self.order));
        }
        match self.population {
            PopulationSpec::Standard => Ok(()),
            // Validate without generating: the generators' own rejection
            // rules, applied to the counts alone.
            PopulationSpec::Mixed { count } | PopulationSpec::Dense { target: count } => {
                if count == 0 {
                    return Err("population profile would generate no faults".to_string());
                }
                if organization.capacity() < 2 {
                    return Err(format!(
                        "population needs at least two cells, array holds {}",
                        organization.capacity()
                    ));
                }
                Ok(())
            }
        }
    }

    /// FNV-1a digest over this job's fields alone — the identity the
    /// daemon dedupes dynamic submissions by, and the pin that journal v2
    /// dynamic-plan records carry alongside their catalog indices.
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv1a::new();
        self.digest_into(&mut hasher);
        hasher.finish()
    }

    /// Absorbs every field into `hasher`, with separators, so plans that
    /// differ in any job field produce different digests.
    fn digest_into(&self, hasher: &mut Fnv1a) {
        hasher.write_u32(self.rows);
        hasher.write_u32(self.cols);
        hasher.write_u64(self.seed);
        hasher.write(self.algorithm.as_bytes());
        hasher.write_u8(0xFF);
        hasher.write(self.order.as_bytes());
        hasher.write_u8(0xFF);
        hasher.write_u8(u8::from(self.background));
        hasher.write_u8(match self.backend {
            SweepBackend::LaneBatched => 0,
            SweepBackend::LaneBatchedListOrder => 1,
            SweepBackend::PerFault => 2,
        });
        hasher.write(self.population.render().as_bytes());
        hasher.write_u8(0xFF);
    }
}

/// An ordered list of jobs with a stable digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPlan {
    /// The jobs, in dispatch (and journal-index) order.
    pub jobs: Vec<JobSpec>,
}

impl CampaignPlan {
    /// Wraps a job list.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Self { jobs }
    }

    /// The full cross product `seeds × algorithms × orders × backgrounds`
    /// over one organization, in that nesting order (seeds outermost) —
    /// the shape `campaign_run` builds from its flag lists.
    // One parameter per crossed axis; a builder would obscure the shape.
    #[allow(clippy::too_many_arguments)]
    pub fn cross(
        rows: u32,
        cols: u32,
        seeds: &[u64],
        algorithms: &[String],
        orders: &[String],
        backgrounds: &[bool],
        backend: SweepBackend,
        population: PopulationSpec,
    ) -> Self {
        let mut jobs = Vec::new();
        for &seed in seeds {
            for algorithm in algorithms {
                for order in orders {
                    for &background in backgrounds {
                        jobs.push(JobSpec {
                            rows,
                            cols,
                            seed,
                            algorithm: algorithm.clone(),
                            order: order.clone(),
                            background,
                            backend,
                            population,
                        });
                    }
                }
            }
        }
        Self::new(jobs)
    }

    /// Number of jobs in the plan.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the plan holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// FNV-1a digest over every job field, in order. Written into the
    /// journal and export headers; resume refuses a journal whose digest
    /// disagrees ([`CampaignError::PlanMismatch`]).
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv1a::new();
        hasher.write_u32(self.jobs.len() as u32);
        for job in &self.jobs {
            job.digest_into(&mut hasher);
        }
        hasher.finish()
    }

    /// Validates every job up-front; the first invalid one fails the plan
    /// with its index and reason.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.jobs.is_empty() {
            return Err(CampaignError::EmptyPlan);
        }
        for (index, job) in self.jobs.iter().enumerate() {
            job.validate().map_err(|reason| CampaignError::InvalidJob {
                job: index as u32,
                reason,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            rows: 8,
            cols: 8,
            seed,
            algorithm: "March C-".to_string(),
            order: "word line after word line".to_string(),
            background: false,
            backend: SweepBackend::LaneBatched,
            population: PopulationSpec::Mixed { count: 32 },
        }
    }

    #[test]
    fn population_specs_round_trip_through_parse_and_render() {
        for spec in [
            PopulationSpec::Standard,
            PopulationSpec::Mixed { count: 100 },
            PopulationSpec::Dense { target: 5000 },
        ] {
            assert_eq!(PopulationSpec::parse(&spec.render()), Some(spec));
        }
        assert_eq!(PopulationSpec::parse("mixed"), None);
        assert_eq!(PopulationSpec::parse("weird:7"), None);
        assert_eq!(PopulationSpec::parse("mixed:x"), None);
    }

    #[test]
    fn plan_digest_pins_every_field() {
        let base = CampaignPlan::new(vec![job(1), job(2)]);
        let digest = base.digest();
        assert_eq!(digest, CampaignPlan::new(vec![job(1), job(2)]).digest());
        // Reordering, editing and truncating all change the digest.
        assert_ne!(digest, CampaignPlan::new(vec![job(2), job(1)]).digest());
        assert_ne!(digest, CampaignPlan::new(vec![job(1)]).digest());
        let mut edited = vec![job(1), job(2)];
        edited[1].background = true;
        assert_ne!(digest, CampaignPlan::new(edited).digest());
        let mut backend = vec![job(1), job(2)];
        backend[0].backend = SweepBackend::PerFault;
        assert_ne!(digest, CampaignPlan::new(backend).digest());
    }

    #[test]
    fn validation_rejects_unresolvable_and_empty_jobs() {
        assert_eq!(
            CampaignPlan::new(vec![]).validate(),
            Err(CampaignError::EmptyPlan)
        );
        let mut unknown_algorithm = job(1);
        unknown_algorithm.algorithm = "March Nope".to_string();
        let mut unknown_order = job(1);
        unknown_order.order = "zigzag".to_string();
        let mut empty = job(1);
        empty.population = PopulationSpec::Mixed { count: 0 };
        let mut tiny = job(1);
        (tiny.rows, tiny.cols) = (1, 1);
        for (index, bad) in [unknown_algorithm, unknown_order, empty, tiny]
            .into_iter()
            .enumerate()
        {
            let plan = CampaignPlan::new(vec![job(1), bad]);
            match plan.validate() {
                Err(CampaignError::InvalidJob { job: 1, .. }) => {}
                other => panic!("case {index}: expected InvalidJob {{ job: 1 }}, got {other:?}"),
            }
        }
        assert!(CampaignPlan::new(vec![job(1), job(2)]).validate().is_ok());
    }

    #[test]
    fn cross_product_enumerates_seeds_outermost() {
        let plan = CampaignPlan::cross(
            4,
            4,
            &[1, 2],
            &["MATS+".to_string(), "March C-".to_string()],
            &["linear".to_string()],
            &[false, true],
            SweepBackend::LaneBatched,
            PopulationSpec::Standard,
        );
        assert_eq!(plan.len(), 8); // 2 seeds x 2 algorithms x 1 order x 2 backgrounds
        assert_eq!(plan.jobs[0].seed, 1);
        assert_eq!(plan.jobs[0].algorithm, "MATS+");
        assert!(!plan.jobs[0].background);
        assert!(plan.jobs[1].background);
        assert_eq!(plan.jobs[2].algorithm, "March C-");
        assert_eq!(plan.jobs[4].seed, 2);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn every_catalog_entry_resolves() {
        // The wire-format catalogs must stay in lockstep with the actual
        // resolvers: a name the catalogs promise but the library cannot
        // build would brick journal v2 resume.
        for name in algorithm_catalog() {
            assert!(
                algorithm_by_name(&name).is_some(),
                "algorithm catalog entry {name:?} does not resolve"
            );
        }
        for name in ORDER_CATALOG {
            assert!(
                order_by_name(name, 1).is_some(),
                "order catalog entry {name:?} does not resolve"
            );
        }
    }
}
