//! Shard planning: splitting one plan across independent campaign
//! processes.
//!
//! A [`Shard`] is `index/count`: shard `i` of `n` owns every job whose
//! plan index is congruent to `i` modulo `n`. Round-robin assignment
//! keeps shards balanced under the cross-product plan shapes
//! ([`crate::spec::CampaignPlan::cross`]), where neighbouring jobs have
//! similar cost. Each shard writes its own journal and partial export;
//! [`crate::output::merge_exports`] recombines them.

use crate::error::CampaignError;

/// One shard of a campaign: `index` of `count`, both 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0..count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Shard {
    /// The whole campaign in one shard.
    pub fn whole() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Builds a shard, rejecting `count == 0` and `index >= count`.
    pub fn new(index: u32, count: u32) -> Result<Self, CampaignError> {
        if count == 0 || index >= count {
            return Err(CampaignError::InvalidJob {
                job: 0,
                reason: format!("shard {index}/{count} is out of range (0-based index < count)"),
            });
        }
        Ok(Self { index, count })
    }

    /// Parses `"index/count"`, e.g. `"0/3"`.
    pub fn parse(spec: &str) -> Result<Self, CampaignError> {
        let invalid = || CampaignError::InvalidJob {
            job: 0,
            reason: format!("cannot parse shard \"{spec}\" (expected index/count, e.g. 0/3)"),
        };
        let (index, count) = spec.split_once('/').ok_or_else(invalid)?;
        let index: u32 = index.parse().map_err(|_| invalid())?;
        let count: u32 = count.parse().map_err(|_| invalid())?;
        Self::new(index, count)
    }

    /// `true` when this shard owns plan job `job`.
    pub fn owns(&self, job: u32) -> bool {
        job % self.count == self.index
    }

    /// The plan job indices this shard owns, in order, for a plan of
    /// `total_jobs`.
    pub fn jobs(&self, total_jobs: u32) -> Vec<u32> {
        (self.index..total_jobs)
            .step_by(self.count as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_plan_exactly() {
        let total = 11u32;
        let shards = [
            Shard::new(0, 3).unwrap(),
            Shard::new(1, 3).unwrap(),
            Shard::new(2, 3).unwrap(),
        ];
        let mut seen = vec![0u32; total as usize];
        for shard in &shards {
            for job in shard.jobs(total) {
                assert!(shard.owns(job));
                seen[job as usize] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "each job in exactly one shard"
        );
        // Balanced to within one job.
        let sizes: Vec<usize> = shards.iter().map(|s| s.jobs(total).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), total as usize);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn parse_accepts_valid_and_rejects_malformed_specs() {
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::whole());
        assert_eq!(Shard::parse("2/5").unwrap(), Shard::new(2, 5).unwrap());
        for bad in ["", "3", "1/0", "5/5", "a/b", "1/2/3", "-1/2"] {
            assert!(Shard::parse(bad).is_err(), "\"{bad}\" must be rejected");
        }
    }
}
