//! Typed campaign failures.
//!
//! Everything that can stop a campaign — a malformed plan, an unreadable
//! journal, a digest disagreement between the journal on disk and the plan
//! being resumed — is a [`CampaignError`] variant with enough context to
//! act on. Errors are `Clone + PartialEq` (I/O errors are carried as
//! rendered strings) so tests can assert on exact failure shapes and the
//! CLI can map variants onto distinct exit codes.

/// A campaign-level failure: the run could not start, could not continue,
/// or found its on-disk state inconsistent with the plan.
///
/// Per-*job* failures (a panicking fault model, a rejected population
/// spec) are **not** errors of this type: they are journaled, retried and
/// eventually quarantined as poison without stopping the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The plan holds no jobs (or the shard owns none of them).
    EmptyPlan,
    /// A job specification failed validation before execution.
    InvalidJob {
        /// Index of the offending job in the plan.
        job: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// An I/O operation on the journal or export failed.
    Io {
        /// What was being done, e.g. `"create journal"`.
        context: String,
        /// The rendered `std::io::Error`.
        error: String,
    },
    /// The journal (or an export) is structurally corrupt beyond the
    /// recoverable torn-tail case: bad header magic, impossible record
    /// length, or two completed records for one job that disagree.
    Corrupt {
        /// Byte offset of the offending structure.
        offset: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The journal being resumed was written by a different plan: its
    /// header digest does not match the plan digest.
    PlanMismatch {
        /// Digest of the plan being resumed.
        expected: u64,
        /// Digest found in the journal header.
        found: u64,
    },
    /// The journal is advisory-locked by another live process: two
    /// campaigns can never resume the same shard journal concurrently.
    Locked {
        /// Path of the locked journal.
        path: String,
    },
    /// The shard supervisor could not continue orchestrating: a child
    /// failed to spawn, a child reported a usage error (its command line
    /// is wrong and restarting cannot fix it), or a completed shard's
    /// export is unreadable.
    Supervisor {
        /// Human-readable reason, naming the shard where one is at fault.
        reason: String,
    },
    /// A deterministic fault injection aborted the run (simulated crash).
    /// Only the [`crate::faultpoint`] harness produces this variant.
    Injected {
        /// Name of the injection point that fired.
        point: String,
    },
    /// Exports could not be merged: overlapping shards, missing jobs, or
    /// mismatched plans.
    MergeConflict {
        /// Human-readable reason.
        reason: String,
    },
}

impl CampaignError {
    /// Wraps an I/O error with its context.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> Self {
        Self::Io {
            context: context.into(),
            error: error.to_string(),
        }
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyPlan => write!(f, "the campaign plan holds no jobs for this shard"),
            Self::InvalidJob { job, reason } => write!(f, "job {job} is invalid: {reason}"),
            Self::Io { context, error } => write!(f, "{context}: {error}"),
            Self::Corrupt { offset, reason } => {
                write!(f, "corrupt journal at byte {offset}: {reason}")
            }
            Self::PlanMismatch { expected, found } => write!(
                f,
                "journal belongs to a different plan (digest {found:#018x}, expected {expected:#018x})"
            ),
            Self::Locked { path } => write!(
                f,
                "journal {path} is locked by another live campaign process"
            ),
            Self::Supervisor { reason } => write!(f, "supervisor cannot continue: {reason}"),
            Self::Injected { point } => write!(f, "fault injection aborted the run at {point}"),
            Self::MergeConflict { reason } => write!(f, "cannot merge exports: {reason}"),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_actionable_messages() {
        let io = CampaignError::io(
            "create journal",
            &std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(io.to_string().contains("create journal"));
        let mismatch = CampaignError::PlanMismatch {
            expected: 0x1,
            found: 0x2,
        };
        assert!(mismatch.to_string().contains("different plan"));
        assert_eq!(mismatch.clone(), mismatch);
        let locked = CampaignError::Locked {
            path: "/tmp/shard-0.journal".to_string(),
        };
        assert!(locked.to_string().contains("/tmp/shard-0.journal"));
        assert!(locked.to_string().contains("another live campaign"));
        let supervisor = CampaignError::Supervisor {
            reason: "shard 2 exited with a usage error".to_string(),
        };
        assert!(supervisor.to_string().contains("shard 2"));
    }
}
