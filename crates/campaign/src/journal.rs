//! The append-only campaign journal.
//!
//! Fixed-width binary records, one per job attempt outcome, each carrying
//! its own FNV-1a checksum — no serde, no variable-length framing, so a
//! reader can always tell a whole record from a torn one by arithmetic
//! alone. See `crates/campaign/README.md` for the wire layout.
//!
//! Crash-safety contract:
//!
//! * **Appends are atomic-or-torn.** A record is 64 bytes; a crash leaves
//!   either the whole record or a prefix of it. Replay
//!   ([`Journal::open_resume`]) verifies magic + checksum per record and
//!   **truncates** the file at the first record that fails either test —
//!   a torn or corrupted tail costs at most the jobs it described, never
//!   the journal.
//! * **The header pins the plan.** The plan digest is written at create
//!   time; resume refuses a journal whose digest disagrees
//!   ([`CampaignError::PlanMismatch`]) instead of silently mixing results
//!   from two different plans.
//! * **Duplicates are benign, disagreements are not.** Replaying two
//!   identical completed records for one job keeps the first; two
//!   *different* results for one job means the journal lies and replay
//!   fails with [`CampaignError::Corrupt`].
//! * **Appends are durable before they count.** Every append is
//!   `fsync`ed before the runner acts on it (marks the job done,
//!   re-enqueues, quarantines), and `create` syncs the parent directory
//!   so the journal's own directory entry survives power loss — an
//!   OS-level crash can tear the last record but never drop an acked
//!   checkpoint.
//! * **One process per journal.** `create` and `open_resume` take an
//!   exclusive advisory lock (`flock`-style, released automatically on
//!   process death, SIGKILL included) and fail with
//!   [`CampaignError::Locked`] while another live process holds it — two
//!   campaigns can never resume the same shard journal concurrently.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions, TryLockError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use march_test::coverage::SweepBackend;
use march_test::rng::Fnv1a;

use crate::error::CampaignError;
use crate::faultpoint::{FaultInjector, JournalAction};
use crate::spec::{algorithm_catalog, CampaignPlan, JobSpec, PopulationSpec, ORDER_CATALOG};

/// Journal header magic: `b"SRAMCAMP"`.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SRAMCAMP";
/// Journal format version written by static (fixed-plan) campaigns.
pub const JOURNAL_VERSION: u32 = 1;
/// Journal format version written by the campaign daemon: identical
/// header and record framing, plus dynamic-plan ([`JournalRecord::JobAdded`])
/// and deadline ([`JournalRecord::TimedOut`]) records. The version bump
/// rides the v1 header's reserved bytes: 20..24, zero in every v1
/// journal, carry [`DYNAMIC_HEADER_TAG`] in a v2 one.
pub const JOURNAL_VERSION_DYNAMIC: u32 = 2;
/// Value of the reserved header bytes 20..24 in a dynamic (v2) journal
/// (little-endian `b"DPL1"`, "dynamic plan v1").
pub const DYNAMIC_HEADER_TAG: u32 = u32::from_le_bytes(*b"DPL1");
/// Header length in bytes.
pub const HEADER_LEN: usize = 32;
/// Record length in bytes.
pub const RECORD_LEN: usize = 64;
/// Record magic (little-endian `b"CJR1"`).
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"CJR1");
/// Bytes of a record covered by the checksum (everything before it).
const CHECKSUM_AT: usize = RECORD_LEN - 8;
/// Capacity of the failure-message payload field.
const MESSAGE_CAP: usize = CHECKSUM_AT - 12;

/// The deterministic result of one completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// Faults detected by the sweep.
    pub detected: u32,
    /// Faults in the population.
    pub total: u32,
    /// Total mismatching reads across the sweep.
    pub mismatches: u64,
    /// [`march_test::coverage::CoverageReport::digest`] of the report.
    pub digest: u64,
}

/// One journal record: the outcome of one attempt at one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The job finished; its result is final.
    Completed {
        /// Plan index of the job.
        job: u32,
        /// Attempt number (1-based) that succeeded.
        attempt: u8,
        /// The sweep result.
        result: JobResult,
    },
    /// One attempt failed (panic or rejected configuration); the job may
    /// be retried.
    Failed {
        /// Plan index of the job.
        job: u32,
        /// Attempt number (1-based) that failed.
        attempt: u8,
        /// The panic payload or error message (truncated to fit).
        message: String,
    },
    /// The job exhausted its attempts and is quarantined.
    Poisoned {
        /// Plan index of the job.
        job: u32,
        /// The final attempt number.
        attempt: u8,
        /// The last failure message (truncated to fit).
        message: String,
    },
    /// A job appended to the plan while the campaign was running —
    /// journal v2 only. The spec travels in compact catalog-indexed wire
    /// form ([`JobWire`]) pinned by the job's field digest.
    JobAdded {
        /// Plan index assigned to the new job (sequential: base plan
        /// size plus the number of earlier dynamic records).
        job: u32,
        /// The job spec in wire form.
        wire: JobWire,
    },
    /// One attempt exceeded its deadline and was abandoned — journal v2
    /// only. Burns an attempt exactly like [`JournalRecord::Failed`] on
    /// replay, but stays distinct on the wire so forensics can tell a
    /// slow job from a broken one.
    TimedOut {
        /// Plan index of the job.
        job: u32,
        /// Attempt number (1-based) that timed out.
        attempt: u8,
        /// The deadline description (truncated to fit).
        message: String,
    },
}

/// The fixed-width wire form of a dynamically added [`JobSpec`] — journal
/// v2's dynamic-plan payload.
///
/// Algorithm and address-order names are stored as indices into
/// [`algorithm_catalog`] / [`ORDER_CATALOG`] (the names themselves do not
/// fit a 64-byte record), and `spec_digest` pins the full resolved spec:
/// decoding re-derives the spec from the catalogs and refuses a record
/// whose digest disagrees, so a reordered catalog fails the resume loudly
/// instead of silently running a different job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobWire {
    /// Word lines of the array.
    pub rows: u32,
    /// Bit lines of the array.
    pub cols: u32,
    /// Population seed.
    pub seed: u64,
    /// Index into [`algorithm_catalog`].
    pub algorithm: u8,
    /// Index into [`ORDER_CATALOG`].
    pub order: u8,
    /// Initial cell value.
    pub background: bool,
    /// Sweep backend byte (0 lane, 1 list-order, 2 per-fault).
    pub backend: u8,
    /// Population profile tag (0 standard, 1 mixed, 2 dense).
    pub population_tag: u8,
    /// Mixed/dense population size (0 for standard).
    pub population_count: u64,
    /// [`JobSpec::digest`] of the full spec.
    pub spec_digest: u64,
}

impl JobWire {
    /// Encodes a spec into wire form, or explains why it cannot travel
    /// (a name outside the catalogs, a population too large for the
    /// record). The daemon rejects such submissions at intake.
    pub fn from_spec(spec: &JobSpec) -> Result<Self, String> {
        let algorithm = algorithm_catalog()
            .iter()
            .position(|name| name == &spec.algorithm)
            .ok_or_else(|| format!("algorithm \"{}\" is not in the catalog", spec.algorithm))?;
        let order = ORDER_CATALOG
            .iter()
            .position(|name| *name == spec.order)
            .ok_or_else(|| format!("address order \"{}\" is not in the catalog", spec.order))?;
        if algorithm > usize::from(u8::MAX) || order > usize::from(u8::MAX) {
            return Err("catalog index exceeds the wire form".to_string());
        }
        let (population_tag, population_count) = match spec.population {
            PopulationSpec::Standard => (0u8, 0u64),
            PopulationSpec::Mixed { count } => (1, count as u64),
            PopulationSpec::Dense { target } => (2, target as u64),
        };
        Ok(Self {
            rows: spec.rows,
            cols: spec.cols,
            seed: spec.seed,
            algorithm: algorithm as u8,
            order: order as u8,
            background: spec.background,
            backend: match spec.backend {
                SweepBackend::LaneBatched => 0,
                SweepBackend::LaneBatchedListOrder => 1,
                SweepBackend::PerFault => 2,
            },
            population_tag,
            population_count,
            spec_digest: spec.digest(),
        })
    }

    /// Rebuilds the spec from the catalogs, refusing a record whose
    /// stored digest disagrees with the rebuilt spec — the catalog-drift
    /// guard.
    pub fn to_spec(&self) -> Result<JobSpec, String> {
        let algorithms = algorithm_catalog();
        let algorithm = algorithms
            .get(usize::from(self.algorithm))
            .cloned()
            .ok_or_else(|| format!("algorithm catalog has no entry {}", self.algorithm))?;
        let order = ORDER_CATALOG
            .get(usize::from(self.order))
            .map(|name| name.to_string())
            .ok_or_else(|| format!("order catalog has no entry {}", self.order))?;
        let population = match self.population_tag {
            0 => PopulationSpec::Standard,
            1 => PopulationSpec::Mixed {
                count: self.population_count as usize,
            },
            2 => PopulationSpec::Dense {
                target: self.population_count as usize,
            },
            other => return Err(format!("unknown population tag {other}")),
        };
        let spec = JobSpec {
            rows: self.rows,
            cols: self.cols,
            seed: self.seed,
            algorithm,
            order,
            background: self.background,
            backend: match self.backend {
                0 => SweepBackend::LaneBatched,
                1 => SweepBackend::LaneBatchedListOrder,
                2 => SweepBackend::PerFault,
                other => return Err(format!("unknown backend byte {other}")),
            },
            population,
        };
        if spec.digest() != self.spec_digest {
            return Err(format!(
                "job digest mismatch (stored {:#018x}, catalogs rebuild {:#018x}) — \
                 the algorithm/order catalogs changed since this journal was written",
                self.spec_digest,
                spec.digest()
            ));
        }
        Ok(spec)
    }
}

impl JournalRecord {
    /// Plan index of the job this record describes.
    pub fn job(&self) -> u32 {
        match self {
            Self::Completed { job, .. }
            | Self::Failed { job, .. }
            | Self::Poisoned { job, .. }
            | Self::JobAdded { job, .. }
            | Self::TimedOut { job, .. } => *job,
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            Self::Completed { .. } => 1,
            Self::Failed { .. } => 2,
            Self::Poisoned { .. } => 3,
            Self::JobAdded { .. } => 4,
            Self::TimedOut { .. } => 5,
        }
    }

    /// Encodes the record into its 64-byte wire form.
    pub fn encode(&self) -> [u8; RECORD_LEN] {
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0..4].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        bytes[4] = self.kind_byte();
        let (attempt, job) = match self {
            Self::Completed { job, attempt, .. }
            | Self::Failed { job, attempt, .. }
            | Self::Poisoned { job, attempt, .. }
            | Self::TimedOut { job, attempt, .. } => (*attempt, *job),
            Self::JobAdded { job, .. } => (0, *job),
        };
        bytes[5] = attempt;
        // bytes 6..8: flags, reserved as zero.
        bytes[8..12].copy_from_slice(&job.to_le_bytes());
        match self {
            Self::Completed { result, .. } => {
                bytes[12..16].copy_from_slice(&result.detected.to_le_bytes());
                bytes[16..20].copy_from_slice(&result.total.to_le_bytes());
                bytes[20..28].copy_from_slice(&result.mismatches.to_le_bytes());
                bytes[28..36].copy_from_slice(&result.digest.to_le_bytes());
            }
            Self::Failed { message, .. }
            | Self::Poisoned { message, .. }
            | Self::TimedOut { message, .. } => {
                let truncated = truncate_to_char_boundary(message, MESSAGE_CAP);
                bytes[12..12 + truncated.len()].copy_from_slice(truncated.as_bytes());
            }
            Self::JobAdded { wire, .. } => {
                bytes[12..16].copy_from_slice(&wire.rows.to_le_bytes());
                bytes[16..20].copy_from_slice(&wire.cols.to_le_bytes());
                bytes[20..28].copy_from_slice(&wire.seed.to_le_bytes());
                bytes[28] = wire.algorithm;
                bytes[29] = wire.order;
                bytes[30] = u8::from(wire.background);
                bytes[31] = wire.backend;
                bytes[32] = wire.population_tag;
                bytes[33..41].copy_from_slice(&wire.population_count.to_le_bytes());
                bytes[41..49].copy_from_slice(&wire.spec_digest.to_le_bytes());
            }
        }
        let checksum = Fnv1a::hash(&bytes[..CHECKSUM_AT]);
        bytes[CHECKSUM_AT..].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Decodes a 64-byte record, returning `None` when the magic, the
    /// checksum or the kind byte is wrong — the "treat as torn tail"
    /// signal for replay.
    pub fn decode(bytes: &[u8; RECORD_LEN]) -> Option<Self> {
        if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != RECORD_MAGIC {
            return None;
        }
        let stored = u64::from_le_bytes(bytes[CHECKSUM_AT..].try_into().unwrap());
        if Fnv1a::hash(&bytes[..CHECKSUM_AT]) != stored {
            return None;
        }
        let attempt = bytes[5];
        let job = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        match bytes[4] {
            1 => Some(Self::Completed {
                job,
                attempt,
                result: JobResult {
                    detected: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
                    total: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
                    mismatches: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
                    digest: u64::from_le_bytes(bytes[28..36].try_into().unwrap()),
                },
            }),
            kind @ (2 | 3 | 5) => {
                let payload = &bytes[12..CHECKSUM_AT];
                let len = payload
                    .iter()
                    .position(|&b| b == 0)
                    .unwrap_or(payload.len());
                let message = String::from_utf8_lossy(&payload[..len]).into_owned();
                Some(match kind {
                    2 => Self::Failed {
                        job,
                        attempt,
                        message,
                    },
                    3 => Self::Poisoned {
                        job,
                        attempt,
                        message,
                    },
                    _ => Self::TimedOut {
                        job,
                        attempt,
                        message,
                    },
                })
            }
            4 => Some(Self::JobAdded {
                job,
                wire: JobWire {
                    rows: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
                    cols: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
                    seed: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
                    algorithm: bytes[28],
                    order: bytes[29],
                    background: bytes[30] != 0,
                    backend: bytes[31],
                    population_tag: bytes[32],
                    population_count: u64::from_le_bytes(bytes[33..41].try_into().unwrap()),
                    spec_digest: u64::from_le_bytes(bytes[41..49].try_into().unwrap()),
                },
            }),
            _ => None,
        }
    }
}

/// `fsync`s the parent directory of `path`, making the file's directory
/// entry durable. Without this, a power loss right after `create` can
/// leave a synced file that no directory names.
fn sync_parent_dir(path: &Path) -> Result<(), CampaignError> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        // A bare file name lives in the CWD; "." always exists.
        _ => Path::new("."),
    };
    File::open(parent)
        .and_then(|dir| dir.sync_all())
        .map_err(|error| CampaignError::io(format!("fsync journal directory {parent:?}"), &error))
}

/// The durability-ordering checkpoints the journal passes through, in
/// the order they must happen. Recorded (under `cfg(test)`) into a
/// thread-local log so the flush-ordering test can pin that data hits
/// the file before the file is synced, and the file is synced before
/// the directory entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))]
enum SyncPoint {
    /// Header bytes handed to the kernel.
    HeaderWritten,
    /// Record bytes handed to the kernel.
    RecordWritten,
    /// File contents `fsync`ed.
    FileSynced,
    /// Parent directory entry `fsync`ed.
    DirSynced,
}

#[cfg(test)]
thread_local! {
    static SYNC_LOG: std::cell::RefCell<Vec<SyncPoint>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Notes that the journal just passed `point` (test builds only).
fn sync_point(point: SyncPoint) {
    #[cfg(test)]
    SYNC_LOG.with(|log| log.borrow_mut().push(point));
    #[cfg(not(test))]
    let _ = point;
}

/// Drains the recorded sync checkpoints (test builds only).
#[cfg(test)]
fn take_sync_log() -> Vec<SyncPoint> {
    SYNC_LOG.with(|log| std::mem::take(&mut *log.borrow_mut()))
}

/// Truncates `message` to at most `cap` bytes on a char boundary.
fn truncate_to_char_boundary(message: &str, cap: usize) -> &str {
    if message.len() <= cap {
        return message;
    }
    let mut end = cap;
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    &message[..end]
}

/// The parsed 32-byte journal header.
#[derive(Debug, Clone, Copy)]
struct Header {
    version: u32,
    jobs: u32,
    reserved: u32,
    digest: u64,
}

/// Digest a dynamic (v2) journal header pins: the digest of an empty
/// plan, since every job arrives as a dynamic append.
pub fn empty_plan_digest() -> u64 {
    CampaignPlan::new(Vec::new()).digest()
}

/// What replaying a journal established about past progress.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Final results of completed jobs.
    pub completed: BTreeMap<u32, JobResult>,
    /// Attempts already burned per still-incomplete job, with the last
    /// failure message.
    pub failed_attempts: BTreeMap<u32, (u8, String)>,
    /// Jobs already quarantined, with their final failure message.
    pub poisoned: BTreeMap<u32, String>,
    /// Jobs appended dynamically (journal v2), in append order: entry
    /// `i` describes plan index `base_jobs + i`. Always empty for a v1
    /// journal.
    pub dynamic: Vec<JobSpec>,
    /// Whole records successfully replayed.
    pub records: u64,
    /// Bytes discarded from the torn/corrupt tail (0 for a clean file).
    pub truncated_bytes: u64,
}

/// An open campaign journal: an append handle plus the replayed state.
#[derive(Debug)]
pub struct Journal {
    file: File,
    records_written: u64,
}

impl Journal {
    /// Opens `path` (creating it if asked) and takes the exclusive
    /// advisory lock, failing with [`CampaignError::Locked`] while
    /// another live process holds it. The lock belongs to the open file
    /// and is released by the OS on *any* process exit, SIGKILL
    /// included — a dead shard never wedges its own restart.
    fn open_locked(path: &Path, create: bool) -> Result<File, CampaignError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(path)
            .map_err(|error| CampaignError::io(format!("open journal {path:?}"), &error))?;
        match file.try_lock() {
            Ok(()) => Ok(file),
            Err(TryLockError::WouldBlock) => Err(CampaignError::Locked {
                path: path.display().to_string(),
            }),
            Err(TryLockError::Error(error)) => {
                Err(CampaignError::io(format!("lock journal {path:?}"), &error))
            }
        }
    }

    /// Creates a fresh journal at `path` (truncating any existing file
    /// once the advisory lock is held) and writes its header durably:
    /// header bytes, then `fsync` of the file, then `fsync` of the
    /// parent directory so the journal's directory entry itself survives
    /// power loss.
    pub fn create(path: &Path, job_count: u32, plan_digest: u64) -> Result<Self, CampaignError> {
        Self::create_versioned(path, JOURNAL_VERSION, job_count, plan_digest)
    }

    /// Creates a fresh **dynamic** (v2) journal for a daemon campaign:
    /// no base plan (zero jobs, the empty-plan digest), every job arrives
    /// later as a [`JournalRecord::JobAdded`] append. The reserved v1
    /// header bytes 20..24 carry [`DYNAMIC_HEADER_TAG`].
    pub fn create_dynamic(path: &Path) -> Result<Self, CampaignError> {
        Self::create_versioned(path, JOURNAL_VERSION_DYNAMIC, 0, empty_plan_digest())
    }

    fn create_versioned(
        path: &Path,
        version: u32,
        job_count: u32,
        plan_digest: u64,
    ) -> Result<Self, CampaignError> {
        let mut file = Self::open_locked(path, true)?;
        // Truncate only after the lock is ours: racing `create` calls
        // must not wipe a live journal they then fail to lock.
        file.set_len(0)
            .map_err(|error| CampaignError::io("truncate journal for create", &error))?;
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&JOURNAL_MAGIC);
        header[8..12].copy_from_slice(&version.to_le_bytes());
        header[12..16].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
        header[16..20].copy_from_slice(&job_count.to_le_bytes());
        // Bytes 20..24: reserved (zero) in v1, the dynamic tag in v2.
        if version == JOURNAL_VERSION_DYNAMIC {
            header[20..24].copy_from_slice(&DYNAMIC_HEADER_TAG.to_le_bytes());
        }
        header[24..32].copy_from_slice(&plan_digest.to_le_bytes());
        file.write_all(&header)
            .map_err(|error| CampaignError::io("write journal header", &error))?;
        sync_point(SyncPoint::HeaderWritten);
        file.sync_all()
            .map_err(|error| CampaignError::io("fsync journal header", &error))?;
        sync_point(SyncPoint::FileSynced);
        sync_parent_dir(path)?;
        sync_point(SyncPoint::DirSynced);
        Ok(Self {
            file,
            records_written: 0,
        })
    }

    /// Opens an existing **static** (v1) journal for resume: validates
    /// the header against the plan, replays every whole valid record, and
    /// truncates the file at the first torn or corrupt one.
    pub fn open_resume(
        path: &Path,
        job_count: u32,
        plan_digest: u64,
    ) -> Result<(Self, Replay), CampaignError> {
        let (file, bytes, header) = Self::open_header(path)?;
        if header.version == JOURNAL_VERSION_DYNAMIC {
            return Err(CampaignError::Corrupt {
                offset: 8,
                reason: format!(
                    "journal is dynamic (version {JOURNAL_VERSION_DYNAMIC}); resume it with \
                     campaign_daemon, not a fixed-plan campaign"
                ),
            });
        }
        // A zero job count can never have been written by `create` (plans
        // validate as non-empty), so it is a forged or zeroed header even
        // when the digest happens to collide — reject it outright rather
        // than resuming against a plan the journal never described.
        if header.digest != plan_digest || header.jobs != job_count || header.jobs == 0 {
            return Err(CampaignError::PlanMismatch {
                expected: plan_digest,
                found: header.digest,
            });
        }
        Self::replay_and_truncate(file, &bytes, header.jobs, false)
    }

    /// Opens an existing **dynamic** (v2) journal for resume: validates
    /// the dynamic header tag, replays every whole valid record —
    /// rebuilding the dynamic plan from the [`JournalRecord::JobAdded`]
    /// prefix of each job's records — and truncates the torn/corrupt
    /// tail exactly like the static path. Dynamic appends are checksummed
    /// with the same per-record FNV-1a, so a crash mid-intake costs at
    /// most the submission being journaled, never the journal.
    pub fn open_resume_dynamic(path: &Path) -> Result<(Self, Replay), CampaignError> {
        let (file, bytes, header) = Self::open_header(path)?;
        if header.version != JOURNAL_VERSION_DYNAMIC {
            return Err(CampaignError::Corrupt {
                offset: 8,
                reason: format!(
                    "journal is static (version {}); resume it with campaign_run, not the daemon",
                    header.version
                ),
            });
        }
        if header.reserved != DYNAMIC_HEADER_TAG {
            return Err(CampaignError::Corrupt {
                offset: 20,
                reason: "dynamic journal is missing its DPL1 header tag".to_string(),
            });
        }
        if header.jobs != 0 || header.digest != empty_plan_digest() {
            return Err(CampaignError::PlanMismatch {
                expected: empty_plan_digest(),
                found: header.digest,
            });
        }
        let (journal, replay) = Self::replay_and_truncate(file, &bytes, 0, true)?;
        // Intake dedupes by spec digest before appending, so duplicate
        // dynamic records can only mean a corrupted or hand-edited
        // journal — refuse them rather than running a job twice.
        let mut digests = BTreeSet::new();
        for (index, spec) in replay.dynamic.iter().enumerate() {
            if !digests.insert(spec.digest()) {
                return Err(CampaignError::Corrupt {
                    offset: 0,
                    reason: format!("dynamic job {index} duplicates an earlier submission"),
                });
            }
        }
        Ok((journal, replay))
    }

    /// Locks the file and parses the 32-byte header, with an error that
    /// names every version this build reads when it meets a future one.
    fn open_header(path: &Path) -> Result<(File, Vec<u8>, Header), CampaignError> {
        let mut file = Self::open_locked(path, false)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|error| CampaignError::io("read journal", &error))?;
        if bytes.len() < HEADER_LEN {
            return Err(CampaignError::Corrupt {
                offset: 0,
                reason: format!("header needs {HEADER_LEN} bytes, file has {}", bytes.len()),
            });
        }
        if bytes[0..8] != JOURNAL_MAGIC {
            return Err(CampaignError::Corrupt {
                offset: 0,
                reason: "bad journal magic".to_string(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != JOURNAL_VERSION && version != JOURNAL_VERSION_DYNAMIC {
            return Err(CampaignError::Corrupt {
                offset: 8,
                reason: format!(
                    "unsupported journal version {version} (this build reads version \
                     {JOURNAL_VERSION} static and version {JOURNAL_VERSION_DYNAMIC} dynamic \
                     journals)"
                ),
            });
        }
        let record_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if record_len as usize != RECORD_LEN {
            return Err(CampaignError::Corrupt {
                offset: 12,
                reason: format!("unsupported record length {record_len}"),
            });
        }
        let header = Header {
            version,
            jobs: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
            reserved: u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            digest: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        };
        Ok((file, bytes, header))
    }

    /// Replays every whole valid record and truncates the file at the
    /// first torn or corrupt one. `base_jobs` is the fixed-plan job
    /// count; `dynamic` allows kind-4/5 records and grows the known job
    /// count with each [`JournalRecord::JobAdded`].
    fn replay_and_truncate(
        mut file: File,
        bytes: &[u8],
        base_jobs: u32,
        dynamic: bool,
    ) -> Result<(Self, Replay), CampaignError> {
        let mut replay = Replay::default();
        let mut offset = HEADER_LEN;
        while offset + RECORD_LEN <= bytes.len() {
            let chunk: &[u8; RECORD_LEN] = bytes[offset..offset + RECORD_LEN].try_into().unwrap();
            let Some(record) = JournalRecord::decode(chunk) else {
                break; // torn or corrupt: truncate here, discard the rest
            };
            Self::replay_record(&mut replay, record, offset as u64, base_jobs, dynamic)?;
            replay.records += 1;
            offset += RECORD_LEN;
        }
        replay.truncated_bytes = (bytes.len() - offset) as u64;
        file.set_len(offset as u64)
            .and_then(|_| file.seek(SeekFrom::Start(offset as u64)))
            .map_err(|error| CampaignError::io("truncate journal tail", &error))?;
        Ok((
            Self {
                file,
                records_written: replay.records,
            },
            replay,
        ))
    }

    /// Folds one replayed record into the progress state.
    fn replay_record(
        replay: &mut Replay,
        record: JournalRecord,
        offset: u64,
        base_jobs: u32,
        dynamic: bool,
    ) -> Result<(), CampaignError> {
        // Every outcome record must name a job the journal has already
        // defined — the base plan or an earlier dynamic append.
        let known_jobs = base_jobs as u64 + replay.dynamic.len() as u64;
        if !matches!(record, JournalRecord::JobAdded { .. })
            && u64::from(record.job()) >= known_jobs
        {
            return Err(CampaignError::Corrupt {
                offset,
                reason: format!(
                    "record describes job {} but the journal only defines {known_jobs}",
                    record.job()
                ),
            });
        }
        match record {
            JournalRecord::JobAdded { job, wire } => {
                if !dynamic {
                    return Err(CampaignError::Corrupt {
                        offset,
                        reason: "dynamic-plan record in a static (v1) journal".to_string(),
                    });
                }
                if u64::from(job) != known_jobs {
                    return Err(CampaignError::Corrupt {
                        offset,
                        reason: format!(
                            "dynamic-plan record assigns job {job}, expected {known_jobs}"
                        ),
                    });
                }
                let spec = wire
                    .to_spec()
                    .map_err(|reason| CampaignError::Corrupt { offset, reason })?;
                replay.dynamic.push(spec);
            }
            JournalRecord::Completed { job, result, .. } => {
                if let Some(existing) = replay.completed.get(&job) {
                    if *existing != result {
                        return Err(CampaignError::Corrupt {
                            offset,
                            reason: format!(
                                "job {job} has two completed records with different results"
                            ),
                        });
                    }
                    // Identical duplicate (re-dispatched then resumed
                    // twice): first record wins, nothing to do.
                } else {
                    replay.completed.insert(job, result);
                    replay.failed_attempts.remove(&job);
                }
            }
            // A timeout burns an attempt exactly like a failure; it only
            // differs on the wire, for forensics.
            JournalRecord::Failed {
                job,
                attempt,
                message,
            }
            | JournalRecord::TimedOut {
                job,
                attempt,
                message,
            } => {
                if !replay.completed.contains_key(&job) {
                    let entry = replay
                        .failed_attempts
                        .entry(job)
                        .or_insert((0, String::new()));
                    entry.0 = entry.0.max(attempt);
                    entry.1 = message;
                }
            }
            JournalRecord::Poisoned { job, message, .. } => {
                replay.poisoned.insert(job, message);
                replay.failed_attempts.remove(&job);
            }
        }
        Ok(())
    }

    /// Number of records appended (including replayed ones).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Appends one record, honouring the injector's directive for this
    /// record ordinal: a torn write stores only the first half and
    /// aborts; a byte flip corrupts the stored copy and aborts — both
    /// simulate dying mid-append with the in-memory state lost.
    ///
    /// A normal append is `fsync`ed (`sync_data`) before it returns, so
    /// by the time the runner acts on the record — marks the job done,
    /// re-enqueues it, quarantines it — the checkpoint is on the
    /// platter, not in the page cache: OS-level power loss can tear the
    /// record being written but never drop an acked one.
    pub fn append(
        &mut self,
        record: &JournalRecord,
        injector: &FaultInjector,
    ) -> Result<(), CampaignError> {
        let mut bytes = record.encode();
        let ordinal = self.records_written;
        match injector.journal_action(ordinal) {
            JournalAction::Normal => {
                self.file
                    .write_all(&bytes)
                    .map_err(|error| CampaignError::io("append journal record", &error))?;
                sync_point(SyncPoint::RecordWritten);
                self.file
                    .sync_data()
                    .map_err(|error| CampaignError::io("fsync journal record", &error))?;
                sync_point(SyncPoint::FileSynced);
                self.records_written += 1;
                Ok(())
            }
            JournalAction::Torn => {
                self.file
                    .write_all(&bytes[..RECORD_LEN / 2])
                    .and_then(|()| self.file.flush())
                    .map_err(|error| CampaignError::io("append journal record", &error))?;
                Err(CampaignError::Injected {
                    point: format!("torn journal write at record {ordinal}"),
                })
            }
            JournalAction::Flip(byte) => {
                let index = byte.min(RECORD_LEN - 1);
                bytes[index] ^= 0x01;
                self.file
                    .write_all(&bytes)
                    .and_then(|()| self.file.flush())
                    .map_err(|error| CampaignError::io("append journal record", &error))?;
                Err(CampaignError::Injected {
                    point: format!("flipped byte {index} of record {ordinal}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(seed: u64) -> JobResult {
        JobResult {
            detected: seed as u32,
            total: seed as u32 + 10,
            mismatches: seed * 3,
            digest: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    #[test]
    fn records_round_trip_through_the_wire_form() {
        let records = [
            JournalRecord::Completed {
                job: 7,
                attempt: 2,
                result: result(42),
            },
            JournalRecord::Failed {
                job: 3,
                attempt: 1,
                message: "sweep panicked: boom".to_string(),
            },
            JournalRecord::Poisoned {
                job: 9,
                attempt: 3,
                message: "faultpoint: worker killed".to_string(),
            },
        ];
        for record in &records {
            let bytes = record.encode();
            assert_eq!(bytes.len(), RECORD_LEN);
            assert_eq!(JournalRecord::decode(&bytes).as_ref(), Some(record));
        }
    }

    #[test]
    fn long_and_multibyte_messages_truncate_safely() {
        let long = "é".repeat(200);
        let record = JournalRecord::Failed {
            job: 0,
            attempt: 1,
            message: long.clone(),
        };
        let decoded = JournalRecord::decode(&record.encode()).expect("valid record");
        let JournalRecord::Failed { message, .. } = decoded else {
            panic!("kind must survive");
        };
        assert!(message.len() <= MESSAGE_CAP);
        assert!(long.starts_with(&message));
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "campaign-unit-{tag}-{}-{unique}.journal",
            std::process::id()
        ))
    }

    #[test]
    fn create_and_append_sync_in_durability_order() {
        use crate::faultpoint::FaultInjector;
        let path = temp_journal("sync-order");
        let _ = take_sync_log();
        let mut journal = Journal::create(&path, 2, 0xF00D).expect("create");
        // Create: header reaches the kernel, then the file is fsynced,
        // then the directory entry — never the other way around.
        assert_eq!(
            take_sync_log(),
            vec![
                SyncPoint::HeaderWritten,
                SyncPoint::FileSynced,
                SyncPoint::DirSynced,
            ],
            "create must sync file contents before the directory entry"
        );
        // Each append fsyncs after the write and before returning Ok, so
        // an acked checkpoint is durable by the time the runner acts on
        // it.
        for job in 0..2 {
            journal
                .append(
                    &JournalRecord::Completed {
                        job,
                        attempt: 1,
                        result: result(u64::from(job)),
                    },
                    &FaultInjector::none(),
                )
                .expect("append");
            assert_eq!(
                take_sync_log(),
                vec![SyncPoint::RecordWritten, SyncPoint::FileSynced],
                "append {job} must fsync the record before acking it"
            );
        }
        drop(journal);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn second_process_cannot_open_a_locked_journal() {
        use crate::error::CampaignError;
        let path = temp_journal("locked");
        let journal = Journal::create(&path, 3, 0xBEEF).expect("create");
        // The advisory lock belongs to the open file, so a second open —
        // same process or not — conflicts exactly like a second process
        // would.
        match Journal::open_resume(&path, 3, 0xBEEF) {
            Err(CampaignError::Locked { path: locked }) => {
                assert!(locked.contains("campaign-unit-locked"));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        // A racing `create` is refused too, without truncating the live
        // journal.
        assert!(matches!(
            Journal::create(&path, 3, 0xBEEF),
            Err(CampaignError::Locked { .. })
        ));
        let len = std::fs::metadata(&path).expect("metadata").len();
        assert_eq!(
            len as usize, HEADER_LEN,
            "the losing create must not have wiped the journal"
        );
        // Dropping the holder releases the lock; resume then succeeds.
        drop(journal);
        let (_, replay) = Journal::open_resume(&path, 3, 0xBEEF).expect("resume after release");
        assert_eq!(replay.records, 0);
        std::fs::remove_file(&path).ok();
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            rows: 16,
            cols: 16,
            seed,
            algorithm: algorithm_catalog()[0].clone(),
            order: ORDER_CATALOG[0].to_string(),
            background: false,
            backend: SweepBackend::LaneBatched,
            population: PopulationSpec::Mixed { count: 32 },
        }
    }

    #[test]
    fn dynamic_records_round_trip_through_the_wire_form() {
        let wire = JobWire::from_spec(&spec(9)).expect("encode");
        let records = [
            JournalRecord::JobAdded { job: 4, wire },
            JournalRecord::TimedOut {
                job: 4,
                attempt: 2,
                message: "deadline 250ms exceeded".to_string(),
            },
        ];
        for record in &records {
            let bytes = record.encode();
            assert_eq!(JournalRecord::decode(&bytes).as_ref(), Some(record));
        }
        assert_eq!(wire.to_spec().expect("decode"), spec(9));
    }

    #[test]
    fn wire_form_refuses_names_outside_the_catalogs() {
        let mut bad = spec(1);
        bad.algorithm = "definitely not an algorithm".to_string();
        let error = JobWire::from_spec(&bad).expect_err("must refuse");
        assert!(error.contains("not in the catalog"), "got: {error}");
        // A tampered digest means the catalogs no longer rebuild the
        // spec that was journaled — decoding must refuse.
        let mut wire = JobWire::from_spec(&spec(1)).expect("encode");
        wire.spec_digest ^= 1;
        let error = wire.to_spec().expect_err("must refuse");
        assert!(error.contains("digest mismatch"), "got: {error}");
    }

    #[test]
    fn dynamic_journal_resumes_plan_and_outcomes() {
        use crate::faultpoint::FaultInjector;
        let path = temp_journal("dynamic-resume");
        let mut journal = Journal::create_dynamic(&path).expect("create");
        for (job, seed) in [(0u32, 1u64), (1, 2), (2, 3)] {
            journal
                .append(
                    &JournalRecord::JobAdded {
                        job,
                        wire: JobWire::from_spec(&spec(seed)).expect("encode"),
                    },
                    &FaultInjector::none(),
                )
                .expect("append add");
        }
        journal
            .append(
                &JournalRecord::TimedOut {
                    job: 1,
                    attempt: 1,
                    message: "deadline".to_string(),
                },
                &FaultInjector::none(),
            )
            .expect("append timeout");
        journal
            .append(
                &JournalRecord::Completed {
                    job: 0,
                    attempt: 1,
                    result: result(7),
                },
                &FaultInjector::none(),
            )
            .expect("append completed");
        drop(journal);
        let (_, replay) = Journal::open_resume_dynamic(&path).expect("resume");
        assert_eq!(replay.dynamic, vec![spec(1), spec(2), spec(3)]);
        assert_eq!(replay.completed.get(&0), Some(&result(7)));
        // A timeout burns an attempt exactly like a failure.
        assert_eq!(replay.failed_attempts.get(&1).map(|(n, _)| *n), Some(1));
        assert_eq!(replay.records, 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_dynamic_append_truncates_not_fails() {
        use crate::faultpoint::FaultInjector;
        let path = temp_journal("dynamic-torn");
        let mut journal = Journal::create_dynamic(&path).expect("create");
        journal
            .append(
                &JournalRecord::JobAdded {
                    job: 0,
                    wire: JobWire::from_spec(&spec(1)).expect("encode"),
                },
                &FaultInjector::none(),
            )
            .expect("append");
        drop(journal);
        // Crash mid-intake: a prefix of the next JobAdded hits the disk.
        let torn = JournalRecord::JobAdded {
            job: 1,
            wire: JobWire::from_spec(&spec(2)).expect("encode"),
        }
        .encode();
        {
            use std::fs::OpenOptions;
            let mut file = OpenOptions::new().append(true).open(&path).expect("open");
            file.write_all(&torn[..21]).expect("tear");
        }
        let (_, replay) = Journal::open_resume_dynamic(&path).expect("resume");
        assert_eq!(replay.dynamic, vec![spec(1)]);
        assert_eq!(replay.truncated_bytes, 21);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatches_name_both_supported_versions() {
        let path = temp_journal("future-version");
        {
            let journal = Journal::create(&path, 2, 0xF00D).expect("create");
            drop(journal);
            let mut bytes = std::fs::read(&path).expect("read");
            bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
            std::fs::write(&path, bytes).expect("write");
        }
        for attempt in [
            Journal::open_resume(&path, 2, 0xF00D).map(|_| ()),
            Journal::open_resume_dynamic(&path).map(|_| ()),
        ] {
            match attempt {
                Err(CampaignError::Corrupt { reason, .. }) => {
                    assert!(reason.contains("version 9"), "got: {reason}");
                    assert!(
                        reason.contains("version 1") && reason.contains("version 2"),
                        "error must name both supported versions, got: {reason}"
                    );
                }
                other => panic!("expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn static_and_dynamic_journals_refuse_the_wrong_resume_path() {
        let path = temp_journal("wrong-kind");
        drop(Journal::create_dynamic(&path).expect("create"));
        match Journal::open_resume(&path, 1, 0xF00D) {
            Err(CampaignError::Corrupt { reason, .. }) => {
                assert!(reason.contains("campaign_daemon"), "got: {reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        drop(Journal::create(&path, 1, 0xF00D).expect("recreate static"));
        match Journal::open_resume_dynamic(&path) {
            Err(CampaignError::Corrupt { reason, .. }) => {
                assert!(reason.contains("campaign_run"), "got: {reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_dynamic_submissions_fail_resume() {
        use crate::faultpoint::FaultInjector;
        let path = temp_journal("dynamic-dup");
        let mut journal = Journal::create_dynamic(&path).expect("create");
        let wire = JobWire::from_spec(&spec(5)).expect("encode");
        for job in 0..2 {
            journal
                .append(
                    &JournalRecord::JobAdded { job, wire },
                    &FaultInjector::none(),
                )
                .expect("append");
        }
        drop(journal);
        match Journal::open_resume_dynamic(&path) {
            Err(CampaignError::Corrupt { reason, .. }) => {
                assert!(reason.contains("duplicates"), "got: {reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_records_in_a_static_journal_fail_resume() {
        use crate::faultpoint::FaultInjector;
        let path = temp_journal("static-no-dynamic");
        let mut journal = Journal::create(&path, 2, 0xF00D).expect("create");
        journal
            .append(
                &JournalRecord::JobAdded {
                    job: 2,
                    wire: JobWire::from_spec(&spec(1)).expect("encode"),
                },
                &FaultInjector::none(),
            )
            .expect("append");
        drop(journal);
        match Journal::open_resume(&path, 2, 0xF00D) {
            Err(CampaignError::Corrupt { reason, .. }) => {
                assert!(reason.contains("static"), "got: {reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_flipped_bit_invalidates_the_record() {
        let record = JournalRecord::Completed {
            job: 1,
            attempt: 1,
            result: result(5),
        };
        let clean = record.encode();
        for byte in [0, 4, 5, 8, 12, 30, CHECKSUM_AT, RECORD_LEN - 1] {
            let mut corrupt = clean;
            corrupt[byte] ^= 0x10;
            assert_eq!(
                JournalRecord::decode(&corrupt),
                None,
                "flip at byte {byte} must be caught"
            );
        }
    }
}
