//! The append-only campaign journal.
//!
//! Fixed-width binary records, one per job attempt outcome, each carrying
//! its own FNV-1a checksum — no serde, no variable-length framing, so a
//! reader can always tell a whole record from a torn one by arithmetic
//! alone. See `crates/campaign/README.md` for the wire layout.
//!
//! Crash-safety contract:
//!
//! * **Appends are atomic-or-torn.** A record is 64 bytes; a crash leaves
//!   either the whole record or a prefix of it. Replay
//!   ([`Journal::open_resume`]) verifies magic + checksum per record and
//!   **truncates** the file at the first record that fails either test —
//!   a torn or corrupted tail costs at most the jobs it described, never
//!   the journal.
//! * **The header pins the plan.** The plan digest is written at create
//!   time; resume refuses a journal whose digest disagrees
//!   ([`CampaignError::PlanMismatch`]) instead of silently mixing results
//!   from two different plans.
//! * **Duplicates are benign, disagreements are not.** Replaying two
//!   identical completed records for one job keeps the first; two
//!   *different* results for one job means the journal lies and replay
//!   fails with [`CampaignError::Corrupt`].
//! * **Appends are durable before they count.** Every append is
//!   `fsync`ed before the runner acts on it (marks the job done,
//!   re-enqueues, quarantines), and `create` syncs the parent directory
//!   so the journal's own directory entry survives power loss — an
//!   OS-level crash can tear the last record but never drop an acked
//!   checkpoint.
//! * **One process per journal.** `create` and `open_resume` take an
//!   exclusive advisory lock (`flock`-style, released automatically on
//!   process death, SIGKILL included) and fail with
//!   [`CampaignError::Locked`] while another live process holds it — two
//!   campaigns can never resume the same shard journal concurrently.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions, TryLockError};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use march_test::rng::Fnv1a;

use crate::error::CampaignError;
use crate::faultpoint::{FaultInjector, JournalAction};

/// Journal header magic: `b"SRAMCAMP"`.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SRAMCAMP";
/// Journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 32;
/// Record length in bytes.
pub const RECORD_LEN: usize = 64;
/// Record magic (little-endian `b"CJR1"`).
pub const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"CJR1");
/// Bytes of a record covered by the checksum (everything before it).
const CHECKSUM_AT: usize = RECORD_LEN - 8;
/// Capacity of the failure-message payload field.
const MESSAGE_CAP: usize = CHECKSUM_AT - 12;

/// The deterministic result of one completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// Faults detected by the sweep.
    pub detected: u32,
    /// Faults in the population.
    pub total: u32,
    /// Total mismatching reads across the sweep.
    pub mismatches: u64,
    /// [`march_test::coverage::CoverageReport::digest`] of the report.
    pub digest: u64,
}

/// One journal record: the outcome of one attempt at one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The job finished; its result is final.
    Completed {
        /// Plan index of the job.
        job: u32,
        /// Attempt number (1-based) that succeeded.
        attempt: u8,
        /// The sweep result.
        result: JobResult,
    },
    /// One attempt failed (panic or rejected configuration); the job may
    /// be retried.
    Failed {
        /// Plan index of the job.
        job: u32,
        /// Attempt number (1-based) that failed.
        attempt: u8,
        /// The panic payload or error message (truncated to fit).
        message: String,
    },
    /// The job exhausted its attempts and is quarantined.
    Poisoned {
        /// Plan index of the job.
        job: u32,
        /// The final attempt number.
        attempt: u8,
        /// The last failure message (truncated to fit).
        message: String,
    },
}

impl JournalRecord {
    /// Plan index of the job this record describes.
    pub fn job(&self) -> u32 {
        match self {
            Self::Completed { job, .. } | Self::Failed { job, .. } | Self::Poisoned { job, .. } => {
                *job
            }
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            Self::Completed { .. } => 1,
            Self::Failed { .. } => 2,
            Self::Poisoned { .. } => 3,
        }
    }

    /// Encodes the record into its 64-byte wire form.
    pub fn encode(&self) -> [u8; RECORD_LEN] {
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0..4].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        bytes[4] = self.kind_byte();
        let (attempt, job) = match self {
            Self::Completed { job, attempt, .. }
            | Self::Failed { job, attempt, .. }
            | Self::Poisoned { job, attempt, .. } => (*attempt, *job),
        };
        bytes[5] = attempt;
        // bytes 6..8: flags, reserved as zero.
        bytes[8..12].copy_from_slice(&job.to_le_bytes());
        match self {
            Self::Completed { result, .. } => {
                bytes[12..16].copy_from_slice(&result.detected.to_le_bytes());
                bytes[16..20].copy_from_slice(&result.total.to_le_bytes());
                bytes[20..28].copy_from_slice(&result.mismatches.to_le_bytes());
                bytes[28..36].copy_from_slice(&result.digest.to_le_bytes());
            }
            Self::Failed { message, .. } | Self::Poisoned { message, .. } => {
                let truncated = truncate_to_char_boundary(message, MESSAGE_CAP);
                bytes[12..12 + truncated.len()].copy_from_slice(truncated.as_bytes());
            }
        }
        let checksum = Fnv1a::hash(&bytes[..CHECKSUM_AT]);
        bytes[CHECKSUM_AT..].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Decodes a 64-byte record, returning `None` when the magic, the
    /// checksum or the kind byte is wrong — the "treat as torn tail"
    /// signal for replay.
    pub fn decode(bytes: &[u8; RECORD_LEN]) -> Option<Self> {
        if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != RECORD_MAGIC {
            return None;
        }
        let stored = u64::from_le_bytes(bytes[CHECKSUM_AT..].try_into().unwrap());
        if Fnv1a::hash(&bytes[..CHECKSUM_AT]) != stored {
            return None;
        }
        let attempt = bytes[5];
        let job = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        match bytes[4] {
            1 => Some(Self::Completed {
                job,
                attempt,
                result: JobResult {
                    detected: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
                    total: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
                    mismatches: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
                    digest: u64::from_le_bytes(bytes[28..36].try_into().unwrap()),
                },
            }),
            kind @ (2 | 3) => {
                let payload = &bytes[12..CHECKSUM_AT];
                let len = payload
                    .iter()
                    .position(|&b| b == 0)
                    .unwrap_or(payload.len());
                let message = String::from_utf8_lossy(&payload[..len]).into_owned();
                Some(if kind == 2 {
                    Self::Failed {
                        job,
                        attempt,
                        message,
                    }
                } else {
                    Self::Poisoned {
                        job,
                        attempt,
                        message,
                    }
                })
            }
            _ => None,
        }
    }
}

/// `fsync`s the parent directory of `path`, making the file's directory
/// entry durable. Without this, a power loss right after `create` can
/// leave a synced file that no directory names.
fn sync_parent_dir(path: &Path) -> Result<(), CampaignError> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        // A bare file name lives in the CWD; "." always exists.
        _ => Path::new("."),
    };
    File::open(parent)
        .and_then(|dir| dir.sync_all())
        .map_err(|error| CampaignError::io(format!("fsync journal directory {parent:?}"), &error))
}

/// The durability-ordering checkpoints the journal passes through, in
/// the order they must happen. Recorded (under `cfg(test)`) into a
/// thread-local log so the flush-ordering test can pin that data hits
/// the file before the file is synced, and the file is synced before
/// the directory entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))]
enum SyncPoint {
    /// Header bytes handed to the kernel.
    HeaderWritten,
    /// Record bytes handed to the kernel.
    RecordWritten,
    /// File contents `fsync`ed.
    FileSynced,
    /// Parent directory entry `fsync`ed.
    DirSynced,
}

#[cfg(test)]
thread_local! {
    static SYNC_LOG: std::cell::RefCell<Vec<SyncPoint>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Notes that the journal just passed `point` (test builds only).
fn sync_point(point: SyncPoint) {
    #[cfg(test)]
    SYNC_LOG.with(|log| log.borrow_mut().push(point));
    #[cfg(not(test))]
    let _ = point;
}

/// Drains the recorded sync checkpoints (test builds only).
#[cfg(test)]
fn take_sync_log() -> Vec<SyncPoint> {
    SYNC_LOG.with(|log| std::mem::take(&mut *log.borrow_mut()))
}

/// Truncates `message` to at most `cap` bytes on a char boundary.
fn truncate_to_char_boundary(message: &str, cap: usize) -> &str {
    if message.len() <= cap {
        return message;
    }
    let mut end = cap;
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    &message[..end]
}

/// What replaying a journal established about past progress.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Replay {
    /// Final results of completed jobs.
    pub completed: BTreeMap<u32, JobResult>,
    /// Attempts already burned per still-incomplete job, with the last
    /// failure message.
    pub failed_attempts: BTreeMap<u32, (u8, String)>,
    /// Jobs already quarantined, with their final failure message.
    pub poisoned: BTreeMap<u32, String>,
    /// Whole records successfully replayed.
    pub records: u64,
    /// Bytes discarded from the torn/corrupt tail (0 for a clean file).
    pub truncated_bytes: u64,
}

/// An open campaign journal: an append handle plus the replayed state.
#[derive(Debug)]
pub struct Journal {
    file: File,
    records_written: u64,
}

impl Journal {
    /// Opens `path` (creating it if asked) and takes the exclusive
    /// advisory lock, failing with [`CampaignError::Locked`] while
    /// another live process holds it. The lock belongs to the open file
    /// and is released by the OS on *any* process exit, SIGKILL
    /// included — a dead shard never wedges its own restart.
    fn open_locked(path: &Path, create: bool) -> Result<File, CampaignError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(path)
            .map_err(|error| CampaignError::io(format!("open journal {path:?}"), &error))?;
        match file.try_lock() {
            Ok(()) => Ok(file),
            Err(TryLockError::WouldBlock) => Err(CampaignError::Locked {
                path: path.display().to_string(),
            }),
            Err(TryLockError::Error(error)) => {
                Err(CampaignError::io(format!("lock journal {path:?}"), &error))
            }
        }
    }

    /// Creates a fresh journal at `path` (truncating any existing file
    /// once the advisory lock is held) and writes its header durably:
    /// header bytes, then `fsync` of the file, then `fsync` of the
    /// parent directory so the journal's directory entry itself survives
    /// power loss.
    pub fn create(path: &Path, job_count: u32, plan_digest: u64) -> Result<Self, CampaignError> {
        let mut file = Self::open_locked(path, true)?;
        // Truncate only after the lock is ours: racing `create` calls
        // must not wipe a live journal they then fail to lock.
        file.set_len(0)
            .map_err(|error| CampaignError::io("truncate journal for create", &error))?;
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&JOURNAL_MAGIC);
        header[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
        header[16..20].copy_from_slice(&job_count.to_le_bytes());
        // bytes 20..24 reserved.
        header[24..32].copy_from_slice(&plan_digest.to_le_bytes());
        file.write_all(&header)
            .map_err(|error| CampaignError::io("write journal header", &error))?;
        sync_point(SyncPoint::HeaderWritten);
        file.sync_all()
            .map_err(|error| CampaignError::io("fsync journal header", &error))?;
        sync_point(SyncPoint::FileSynced);
        sync_parent_dir(path)?;
        sync_point(SyncPoint::DirSynced);
        Ok(Self {
            file,
            records_written: 0,
        })
    }

    /// Opens an existing journal for resume: validates the header against
    /// the plan, replays every whole valid record, and truncates the file
    /// at the first torn or corrupt one.
    pub fn open_resume(
        path: &Path,
        job_count: u32,
        plan_digest: u64,
    ) -> Result<(Self, Replay), CampaignError> {
        let mut file = Self::open_locked(path, false)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|error| CampaignError::io("read journal", &error))?;
        if bytes.len() < HEADER_LEN {
            return Err(CampaignError::Corrupt {
                offset: 0,
                reason: format!("header needs {HEADER_LEN} bytes, file has {}", bytes.len()),
            });
        }
        if bytes[0..8] != JOURNAL_MAGIC {
            return Err(CampaignError::Corrupt {
                offset: 0,
                reason: "bad journal magic".to_string(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != JOURNAL_VERSION {
            return Err(CampaignError::Corrupt {
                offset: 8,
                reason: format!("unsupported journal version {version}"),
            });
        }
        let record_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if record_len as usize != RECORD_LEN {
            return Err(CampaignError::Corrupt {
                offset: 12,
                reason: format!("unsupported record length {record_len}"),
            });
        }
        let header_jobs = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let header_digest = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        // A zero job count can never have been written by `create` (plans
        // validate as non-empty), so it is a forged or zeroed header even
        // when the digest happens to collide — reject it outright rather
        // than resuming against a plan the journal never described.
        if header_digest != plan_digest || header_jobs != job_count || header_jobs == 0 {
            return Err(CampaignError::PlanMismatch {
                expected: plan_digest,
                found: header_digest,
            });
        }

        let mut replay = Replay::default();
        let mut offset = HEADER_LEN;
        while offset + RECORD_LEN <= bytes.len() {
            let chunk: &[u8; RECORD_LEN] = bytes[offset..offset + RECORD_LEN].try_into().unwrap();
            let Some(record) = JournalRecord::decode(chunk) else {
                break; // torn or corrupt: truncate here, discard the rest
            };
            Self::replay_record(&mut replay, record, offset as u64)?;
            replay.records += 1;
            offset += RECORD_LEN;
        }
        replay.truncated_bytes = (bytes.len() - offset) as u64;
        file.set_len(offset as u64)
            .and_then(|_| file.seek(SeekFrom::Start(offset as u64)))
            .map_err(|error| CampaignError::io("truncate journal tail", &error))?;
        Ok((
            Self {
                file,
                records_written: replay.records,
            },
            replay,
        ))
    }

    /// Folds one replayed record into the progress state.
    fn replay_record(
        replay: &mut Replay,
        record: JournalRecord,
        offset: u64,
    ) -> Result<(), CampaignError> {
        match record {
            JournalRecord::Completed { job, result, .. } => {
                if let Some(existing) = replay.completed.get(&job) {
                    if *existing != result {
                        return Err(CampaignError::Corrupt {
                            offset,
                            reason: format!(
                                "job {job} has two completed records with different results"
                            ),
                        });
                    }
                    // Identical duplicate (re-dispatched then resumed
                    // twice): first record wins, nothing to do.
                } else {
                    replay.completed.insert(job, result);
                    replay.failed_attempts.remove(&job);
                }
            }
            JournalRecord::Failed {
                job,
                attempt,
                message,
            } => {
                if !replay.completed.contains_key(&job) {
                    let entry = replay
                        .failed_attempts
                        .entry(job)
                        .or_insert((0, String::new()));
                    entry.0 = entry.0.max(attempt);
                    entry.1 = message;
                }
            }
            JournalRecord::Poisoned { job, message, .. } => {
                replay.poisoned.insert(job, message);
                replay.failed_attempts.remove(&job);
            }
        }
        Ok(())
    }

    /// Number of records appended (including replayed ones).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Appends one record, honouring the injector's directive for this
    /// record ordinal: a torn write stores only the first half and
    /// aborts; a byte flip corrupts the stored copy and aborts — both
    /// simulate dying mid-append with the in-memory state lost.
    ///
    /// A normal append is `fsync`ed (`sync_data`) before it returns, so
    /// by the time the runner acts on the record — marks the job done,
    /// re-enqueues it, quarantines it — the checkpoint is on the
    /// platter, not in the page cache: OS-level power loss can tear the
    /// record being written but never drop an acked one.
    pub fn append(
        &mut self,
        record: &JournalRecord,
        injector: &FaultInjector,
    ) -> Result<(), CampaignError> {
        let mut bytes = record.encode();
        let ordinal = self.records_written;
        match injector.journal_action(ordinal) {
            JournalAction::Normal => {
                self.file
                    .write_all(&bytes)
                    .map_err(|error| CampaignError::io("append journal record", &error))?;
                sync_point(SyncPoint::RecordWritten);
                self.file
                    .sync_data()
                    .map_err(|error| CampaignError::io("fsync journal record", &error))?;
                sync_point(SyncPoint::FileSynced);
                self.records_written += 1;
                Ok(())
            }
            JournalAction::Torn => {
                self.file
                    .write_all(&bytes[..RECORD_LEN / 2])
                    .and_then(|()| self.file.flush())
                    .map_err(|error| CampaignError::io("append journal record", &error))?;
                Err(CampaignError::Injected {
                    point: format!("torn journal write at record {ordinal}"),
                })
            }
            JournalAction::Flip(byte) => {
                let index = byte.min(RECORD_LEN - 1);
                bytes[index] ^= 0x01;
                self.file
                    .write_all(&bytes)
                    .and_then(|()| self.file.flush())
                    .map_err(|error| CampaignError::io("append journal record", &error))?;
                Err(CampaignError::Injected {
                    point: format!("flipped byte {index} of record {ordinal}"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(seed: u64) -> JobResult {
        JobResult {
            detected: seed as u32,
            total: seed as u32 + 10,
            mismatches: seed * 3,
            digest: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    #[test]
    fn records_round_trip_through_the_wire_form() {
        let records = [
            JournalRecord::Completed {
                job: 7,
                attempt: 2,
                result: result(42),
            },
            JournalRecord::Failed {
                job: 3,
                attempt: 1,
                message: "sweep panicked: boom".to_string(),
            },
            JournalRecord::Poisoned {
                job: 9,
                attempt: 3,
                message: "faultpoint: worker killed".to_string(),
            },
        ];
        for record in &records {
            let bytes = record.encode();
            assert_eq!(bytes.len(), RECORD_LEN);
            assert_eq!(JournalRecord::decode(&bytes).as_ref(), Some(record));
        }
    }

    #[test]
    fn long_and_multibyte_messages_truncate_safely() {
        let long = "é".repeat(200);
        let record = JournalRecord::Failed {
            job: 0,
            attempt: 1,
            message: long.clone(),
        };
        let decoded = JournalRecord::decode(&record.encode()).expect("valid record");
        let JournalRecord::Failed { message, .. } = decoded else {
            panic!("kind must survive");
        };
        assert!(message.len() <= MESSAGE_CAP);
        assert!(long.starts_with(&message));
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "campaign-unit-{tag}-{}-{unique}.journal",
            std::process::id()
        ))
    }

    #[test]
    fn create_and_append_sync_in_durability_order() {
        use crate::faultpoint::FaultInjector;
        let path = temp_journal("sync-order");
        let _ = take_sync_log();
        let mut journal = Journal::create(&path, 2, 0xF00D).expect("create");
        // Create: header reaches the kernel, then the file is fsynced,
        // then the directory entry — never the other way around.
        assert_eq!(
            take_sync_log(),
            vec![
                SyncPoint::HeaderWritten,
                SyncPoint::FileSynced,
                SyncPoint::DirSynced,
            ],
            "create must sync file contents before the directory entry"
        );
        // Each append fsyncs after the write and before returning Ok, so
        // an acked checkpoint is durable by the time the runner acts on
        // it.
        for job in 0..2 {
            journal
                .append(
                    &JournalRecord::Completed {
                        job,
                        attempt: 1,
                        result: result(u64::from(job)),
                    },
                    &FaultInjector::none(),
                )
                .expect("append");
            assert_eq!(
                take_sync_log(),
                vec![SyncPoint::RecordWritten, SyncPoint::FileSynced],
                "append {job} must fsync the record before acking it"
            );
        }
        drop(journal);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn second_process_cannot_open_a_locked_journal() {
        use crate::error::CampaignError;
        let path = temp_journal("locked");
        let journal = Journal::create(&path, 3, 0xBEEF).expect("create");
        // The advisory lock belongs to the open file, so a second open —
        // same process or not — conflicts exactly like a second process
        // would.
        match Journal::open_resume(&path, 3, 0xBEEF) {
            Err(CampaignError::Locked { path: locked }) => {
                assert!(locked.contains("campaign-unit-locked"));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        // A racing `create` is refused too, without truncating the live
        // journal.
        assert!(matches!(
            Journal::create(&path, 3, 0xBEEF),
            Err(CampaignError::Locked { .. })
        ));
        let len = std::fs::metadata(&path).expect("metadata").len();
        assert_eq!(
            len as usize, HEADER_LEN,
            "the losing create must not have wiped the journal"
        );
        // Dropping the holder releases the lock; resume then succeeds.
        drop(journal);
        let (_, replay) = Journal::open_resume(&path, 3, 0xBEEF).expect("resume after release");
        assert_eq!(replay.records, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_flipped_bit_invalidates_the_record() {
        let record = JournalRecord::Completed {
            job: 1,
            attempt: 1,
            result: result(5),
        };
        let clean = record.encode();
        for byte in [0, 4, 5, 8, 12, 30, CHECKSUM_AT, RECORD_LEN - 1] {
            let mut corrupt = clean;
            corrupt[byte] ^= 0x10;
            assert_eq!(
                JournalRecord::decode(&corrupt),
                None,
                "flip at byte {byte} must be caught"
            );
        }
    }
}
