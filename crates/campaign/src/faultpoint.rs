//! Deterministic fault injection — the harness that *proves* crash
//! safety.
//!
//! A [`FaultInjector`] carries a list of [`Injection`]s, each naming one
//! failure mode at one deterministic point (a job index, an attempt
//! number, a journal record ordinal). The runner and journal consult the
//! injector at the matching points; with [`FaultInjector::none`] every
//! check is a no-op, so production campaigns pay one branch per site.
//!
//! The injected failures are *real*: a worker kill is a genuine panic
//! unwinding out of the job closure, a lane-model panic detonates inside
//! `run_march_lanes` via a wrapped [`LaneFault`], a torn write leaves a
//! genuinely half-written record on disk. The differential tests then
//! assert that resuming after each of them reproduces the uninterrupted
//! campaign byte for byte.

use march_test::faults::{Fault, FaultFactory, FaultKind, LaneFault};
use march_test::memory::{GoodMemory, LaneMemory};
use sram_model::address::Address;

/// One deterministic failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Panic at the start of `job` for its first `attempts` attempts —
    /// a worker dying mid-job. With `attempts >= max_attempts` this is
    /// the poison-exhaustion scenario.
    KillWorker {
        /// Plan index of the job to kill.
        job: u32,
        /// How many attempts die before the job is allowed to succeed.
        attempts: u8,
    },
    /// Panic *inside the lane-batched kernel* while sweeping `job`, for
    /// its first `attempts` attempts: the job's fault models are wrapped
    /// so the first lane read detonates.
    LaneModelPanic {
        /// Plan index of the job whose models detonate.
        job: u32,
        /// How many attempts detonate before the job is allowed to
        /// succeed.
        attempts: u8,
    },
    /// Write only the first half of journal record ordinal `record`
    /// (0-based count of records appended across the campaign), then
    /// abort the run — a crash mid-`write(2)`.
    TornJournalWrite {
        /// Ordinal of the record to tear.
        record: u64,
    },
    /// Flip one bit of byte `byte` of journal record ordinal `record` as
    /// it is written, then abort the run — tail corruption that the
    /// checksum must catch on resume.
    FlipJournalByte {
        /// Ordinal of the record to corrupt.
        record: u64,
        /// Byte offset within the record (0..63) to flip.
        byte: usize,
    },
    /// Abort the run after `count` journal records have been appended —
    /// a clean SIGKILL between two jobs.
    AbortAfterRecords {
        /// Number of records after which the run stops.
        count: u64,
    },
    /// Stop writing heartbeats once `after_jobs` job attempts have been
    /// journaled, while continuing to execute jobs — a shard whose
    /// sidecar channel died but whose work did not. A supervisor that
    /// also watches journal growth must *not* restart such a shard.
    StallHeartbeat {
        /// Journaled attempts after which the heartbeat goes silent.
        after_jobs: u64,
    },
    /// Stop making any progress once `after_jobs` job attempts have been
    /// journaled: workers park forever instead of polling the next job,
    /// with no heartbeat and no journal growth — a genuinely wedged
    /// child that only an external kill can recover.
    WedgeProcess {
        /// Journaled attempts after which the process wedges.
        after_jobs: u64,
    },
    /// A submitting client dies mid-write: trace-replay event ordinal
    /// `submission` (0-based) writes only a prefix of its `.tmp` spool
    /// file and never renames it. The daemon must ignore the orphan
    /// forever — the job simply never arrived.
    TornSpoolWrite {
        /// Trace event ordinal whose submission is torn.
        submission: u64,
    },
    /// Abort the daemon between spool-accept and journal-append of
    /// intake ordinal `submission` (0-based count of spool files read) —
    /// a crash mid-intake. The `.job` file is still in the spool, so a
    /// restart re-offers it and digest dedup absorbs any half-progress.
    CrashMidIntake {
        /// Intake ordinal at which the daemon dies.
        submission: u64,
    },
    /// Stall job `job` for `delay_ms` on its first `attempts` attempts —
    /// fuel for deadline storms: with a per-job deadline below the stall,
    /// each stalled attempt times out and is journaled as such instead of
    /// wedging its worker.
    StallJob {
        /// Plan index of the job to stall.
        job: u32,
        /// How many attempts stall before the job runs at full speed.
        attempts: u8,
        /// Stall duration in milliseconds.
        delay_ms: u64,
    },
}

/// What the journal should do with the record it is about to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalAction {
    /// Write the record normally.
    Normal,
    /// Write only the first half, then abort the run.
    Torn,
    /// Flip one bit of the given byte, write the full record, then abort
    /// the run.
    Flip(usize),
}

/// A set of armed injections, consulted at each failure point.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    injections: Vec<Injection>,
}

impl FaultInjector {
    /// No injections: every check is a no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms `injections`.
    pub fn new(injections: Vec<Injection>) -> Self {
        Self { injections }
    }

    /// Panics — killing the calling worker's current job — when a
    /// [`Injection::KillWorker`] matches `(job, attempt)`. Called at the
    /// top of job execution, inside the runner's `catch_unwind`.
    pub fn check_worker_kill(&self, job: u32, attempt: u8) {
        for injection in &self.injections {
            if let Injection::KillWorker {
                job: target,
                attempts,
            } = injection
            {
                if *target == job && attempt <= *attempts {
                    panic!("faultpoint: worker killed on job {job} attempt {attempt}");
                }
            }
        }
    }

    /// `true` when a [`Injection::LaneModelPanic`] matches `(job,
    /// attempt)` and the job's fault models should be wrapped to
    /// detonate.
    pub fn lane_panic_armed(&self, job: u32, attempt: u8) -> bool {
        self.injections.iter().any(|injection| {
            matches!(injection, Injection::LaneModelPanic { job: target, attempts }
                if *target == job && attempt <= *attempts)
        })
    }

    /// The journal's directive for record ordinal `record`.
    pub fn journal_action(&self, record: u64) -> JournalAction {
        for injection in &self.injections {
            match injection {
                Injection::TornJournalWrite { record: target } if *target == record => {
                    return JournalAction::Torn;
                }
                Injection::FlipJournalByte {
                    record: target,
                    byte,
                } if *target == record => {
                    return JournalAction::Flip(*byte);
                }
                _ => {}
            }
        }
        JournalAction::Normal
    }

    /// `true` when the run should abort after `records_written` records
    /// ([`Injection::AbortAfterRecords`]).
    pub fn should_abort(&self, records_written: u64) -> bool {
        self.injections.iter().any(|injection| {
            matches!(injection, Injection::AbortAfterRecords { count }
                if records_written >= *count)
        })
    }

    /// `true` when the heartbeat should go silent at `jobs_done`
    /// journaled attempts ([`Injection::StallHeartbeat`]).
    pub fn heartbeat_stalled(&self, jobs_done: u64) -> bool {
        self.injections.iter().any(|injection| {
            matches!(injection, Injection::StallHeartbeat { after_jobs }
                if jobs_done > *after_jobs)
        })
    }

    /// `true` when the process should wedge — park every worker forever —
    /// at `jobs_done` journaled attempts ([`Injection::WedgeProcess`]).
    pub fn wedge_armed(&self, jobs_done: u64) -> bool {
        self.injections.iter().any(|injection| {
            matches!(injection, Injection::WedgeProcess { after_jobs }
                if jobs_done >= *after_jobs)
        })
    }

    /// `true` when trace-replay event ordinal `submission` should be
    /// written torn ([`Injection::TornSpoolWrite`]).
    pub fn spool_torn(&self, submission: u64) -> bool {
        self.injections.iter().any(|injection| {
            matches!(injection, Injection::TornSpoolWrite { submission: target }
                if *target == submission)
        })
    }

    /// `true` when the daemon should die between spool-accept and
    /// journal-append of intake ordinal `submission`
    /// ([`Injection::CrashMidIntake`]).
    pub fn crash_mid_intake(&self, submission: u64) -> bool {
        self.injections.iter().any(|injection| {
            matches!(injection, Injection::CrashMidIntake { submission: target }
                if *target == submission)
        })
    }

    /// The injected stall for `(job, attempt)`, if any
    /// ([`Injection::StallJob`]).
    pub fn job_stall(&self, job: u32, attempt: u8) -> Option<std::time::Duration> {
        self.injections
            .iter()
            .find_map(|injection| match injection {
                Injection::StallJob {
                    job: target,
                    attempts,
                    delay_ms,
                } if *target == job && attempt <= *attempts => {
                    Some(std::time::Duration::from_millis(*delay_ms))
                }
                _ => None,
            })
    }
}

/// One process-level failure for the supervisor to inject into a
/// supervised campaign. Unlike [`Injection`]s (which the runner carries
/// in-process), these describe what the *supervisor* does to its
/// children, or which debug flags it arms a child with at launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessInjection {
    /// SIGKILL shard `shard`'s child process once its heartbeat reaches
    /// `after_beats` beats — a worker box dying mid-campaign. Fires at
    /// most once.
    KillChild {
        /// Shard whose child dies.
        shard: u32,
        /// Heartbeat count at (or past) which the kill fires.
        after_beats: u64,
    },
}

/// The supervisor's armed process-level injections: deterministic child
/// kills, plus per-shard debug flags appended to child command lines.
/// `first_launch` flags are dropped on restart (a transient fault the
/// recovery run does not replay); `every_launch` flags persist (a shard
/// that can never succeed, for restart-budget exhaustion tests).
#[derive(Debug, Default)]
pub struct ProcessInjector {
    kills: Vec<(ProcessInjection, std::cell::Cell<bool>)>,
    first_launch: Vec<(u32, Vec<String>)>,
    every_launch: Vec<(u32, Vec<String>)>,
}

impl ProcessInjector {
    /// No process injections: every check is a no-op.
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms `kills`.
    pub fn new(kills: Vec<ProcessInjection>) -> Self {
        Self {
            kills: kills
                .into_iter()
                .map(|kill| (kill, std::cell::Cell::new(false)))
                .collect(),
            ..Self::default()
        }
    }

    /// Appends `args` to shard `shard`'s command line on its *first*
    /// launch only — restarts drop them.
    pub fn with_first_launch_args(mut self, shard: u32, args: &[&str]) -> Self {
        self.first_launch
            .push((shard, args.iter().map(|a| a.to_string()).collect()));
        self
    }

    /// Appends `args` to shard `shard`'s command line on *every* launch,
    /// restarts included.
    pub fn with_every_launch_args(mut self, shard: u32, args: &[&str]) -> Self {
        self.every_launch
            .push((shard, args.iter().map(|a| a.to_string()).collect()));
        self
    }

    /// `true` exactly once per armed [`ProcessInjection::KillChild`]
    /// whose `(shard, after_beats)` threshold `beats` has reached — the
    /// supervisor then SIGKILLs the child.
    pub fn kill_due(&self, shard: u32, beats: u64) -> bool {
        for (kill, consumed) in &self.kills {
            let ProcessInjection::KillChild {
                shard: target,
                after_beats,
            } = kill;
            if *target == shard && beats >= *after_beats && !consumed.get() {
                consumed.set(true);
                return true;
            }
        }
        false
    }

    /// Armed kills that have not fired yet — the harness asserts this
    /// reaches zero, so an injection that never fired fails the test
    /// instead of silently weakening it.
    pub fn unfired_kills(&self) -> usize {
        self.kills
            .iter()
            .filter(|(_, consumed)| !consumed.get())
            .count()
    }

    /// The debug flags to append to shard `shard`'s command line for
    /// launch number `launch` (0 = first launch).
    pub fn child_args(&self, shard: u32, launch: u32) -> Vec<String> {
        let mut args = Vec::new();
        if launch == 0 {
            for (target, extra) in &self.first_launch {
                if *target == shard {
                    args.extend(extra.iter().cloned());
                }
            }
        }
        for (target, extra) in &self.every_launch {
            if *target == shard {
                args.extend(extra.iter().cloned());
            }
        }
        args
    }
}

/// Wraps every factory so the produced faults detonate in the lane
/// kernel: the wrapped fault behaves identically until its first lane
/// read, which panics. Used by the runner when
/// [`FaultInjector::lane_panic_armed`] fires.
pub fn detonate_factories(factories: Vec<FaultFactory>) -> Vec<FaultFactory> {
    factories
        .into_iter()
        .map(|factory| -> FaultFactory {
            Box::new(move || Box::new(DetonatingFault { inner: factory() }))
        })
        .collect()
}

/// A fault whose lane form panics on its first lane read.
#[derive(Debug)]
struct DetonatingFault {
    inner: Box<dyn Fault>,
}

impl Fault for DetonatingFault {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn kind(&self) -> FaultKind {
        self.inner.kind()
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        self.inner.write(memory, address, value);
    }

    fn read(&mut self, _memory: &mut GoodMemory, address: Address) -> bool {
        panic!("faultpoint: fault model panicked reading {address:?}");
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        self.inner.involved_addresses()
    }

    fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
        self.inner
            .lane_form()
            .map(|inner| Box::new(DetonatingLaneFault { inner }) as Box<dyn LaneFault>)
    }
}

/// The lane form of [`DetonatingFault`]: panics inside
/// `run_march_lanes` at the first read touching its lane.
#[derive(Debug)]
struct DetonatingLaneFault {
    inner: Box<dyn LaneFault>,
}

impl LaneFault for DetonatingLaneFault {
    fn involved(&self) -> Vec<Address> {
        self.inner.involved()
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        self.inner.lane_write(memory, lane, address, value);
    }

    fn lane_read(
        &mut self,
        _memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        panic!("faultpoint: lane model panicked on lane {lane} at {address:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_match_only_their_own_coordinates() {
        let injector = FaultInjector::new(vec![
            Injection::KillWorker {
                job: 3,
                attempts: 2,
            },
            Injection::LaneModelPanic {
                job: 5,
                attempts: 1,
            },
            Injection::TornJournalWrite { record: 7 },
            Injection::FlipJournalByte {
                record: 9,
                byte: 60,
            },
            Injection::AbortAfterRecords { count: 11 },
        ]);
        // Worker kill: attempts 1 and 2 die, attempt 3 survives; other
        // jobs are untouched.
        assert!(std::panic::catch_unwind(|| injector.check_worker_kill(3, 1)).is_err());
        assert!(std::panic::catch_unwind(|| injector.check_worker_kill(3, 2)).is_err());
        assert!(std::panic::catch_unwind(|| injector.check_worker_kill(3, 3)).is_ok());
        assert!(std::panic::catch_unwind(|| injector.check_worker_kill(4, 1)).is_ok());
        // Lane panic arming.
        assert!(injector.lane_panic_armed(5, 1));
        assert!(!injector.lane_panic_armed(5, 2));
        assert!(!injector.lane_panic_armed(6, 1));
        // Journal directives.
        assert_eq!(injector.journal_action(7), JournalAction::Torn);
        assert_eq!(injector.journal_action(9), JournalAction::Flip(60));
        assert_eq!(injector.journal_action(8), JournalAction::Normal);
        // Abort threshold.
        assert!(!injector.should_abort(10));
        assert!(injector.should_abort(11));
        assert!(injector.should_abort(12));
        // The empty injector never fires.
        let none = FaultInjector::none();
        assert!(std::panic::catch_unwind(|| none.check_worker_kill(0, 1)).is_ok());
        assert_eq!(none.journal_action(0), JournalAction::Normal);
        assert!(!none.should_abort(u64::MAX));
    }

    #[test]
    fn stall_and_wedge_injections_trip_at_their_job_thresholds() {
        let injector = FaultInjector::new(vec![
            Injection::StallHeartbeat { after_jobs: 2 },
            Injection::WedgeProcess { after_jobs: 4 },
        ]);
        // Jobs 1 and 2 still beat; job 3 onward is silent.
        assert!(!injector.heartbeat_stalled(1));
        assert!(!injector.heartbeat_stalled(2));
        assert!(injector.heartbeat_stalled(3));
        // The process wedges once 4 attempts are journaled.
        assert!(!injector.wedge_armed(3));
        assert!(injector.wedge_armed(4));
        assert!(injector.wedge_armed(5));
        let none = FaultInjector::none();
        assert!(!none.heartbeat_stalled(u64::MAX));
        assert!(!none.wedge_armed(u64::MAX));
    }

    #[test]
    fn intake_injections_fire_at_their_own_ordinals() {
        let injector = FaultInjector::new(vec![
            Injection::TornSpoolWrite { submission: 2 },
            Injection::CrashMidIntake { submission: 4 },
            Injection::StallJob {
                job: 1,
                attempts: 2,
                delay_ms: 300,
            },
        ]);
        assert!(!injector.spool_torn(1));
        assert!(injector.spool_torn(2));
        assert!(!injector.crash_mid_intake(3));
        assert!(injector.crash_mid_intake(4));
        // The stall covers attempts 1 and 2 of job 1 only.
        assert_eq!(
            injector.job_stall(1, 1),
            Some(std::time::Duration::from_millis(300))
        );
        assert_eq!(
            injector.job_stall(1, 2),
            Some(std::time::Duration::from_millis(300))
        );
        assert_eq!(injector.job_stall(1, 3), None);
        assert_eq!(injector.job_stall(0, 1), None);
        let none = FaultInjector::none();
        assert!(!none.spool_torn(0));
        assert!(!none.crash_mid_intake(0));
        assert_eq!(none.job_stall(0, 1), None);
    }

    #[test]
    fn process_injector_kills_once_and_scopes_child_args_by_launch() {
        let injector = ProcessInjector::new(vec![
            ProcessInjection::KillChild {
                shard: 1,
                after_beats: 3,
            },
            ProcessInjection::KillChild {
                shard: 1,
                after_beats: 5,
            },
        ])
        .with_first_launch_args(0, &["--wedge-after", "1"])
        .with_every_launch_args(2, &["--abort-after-records", "2"]);
        assert_eq!(injector.unfired_kills(), 2);
        // Below threshold: nothing fires.
        assert!(!injector.kill_due(1, 2));
        assert!(!injector.kill_due(0, 100));
        // At threshold: fires exactly once; the second armed kill waits
        // for its own threshold.
        assert!(injector.kill_due(1, 3));
        assert!(!injector.kill_due(1, 3));
        assert_eq!(injector.unfired_kills(), 1);
        assert!(injector.kill_due(1, 7));
        assert_eq!(injector.unfired_kills(), 0);
        // First-launch args vanish on restart; every-launch args persist.
        assert_eq!(injector.child_args(0, 0), vec!["--wedge-after", "1"]);
        assert!(injector.child_args(0, 1).is_empty());
        assert_eq!(
            injector.child_args(2, 4),
            vec!["--abort-after-records", "2"]
        );
        assert!(injector.child_args(1, 0).is_empty());
        assert!(ProcessInjector::none().child_args(0, 0).is_empty());
    }

    #[test]
    fn detonating_factories_panic_in_the_fault_model_read_path() {
        use march_test::faults::StuckAtFault;
        let factories: Vec<FaultFactory> = vec![Box::new(|| {
            Box::new(StuckAtFault::new(Address::new(0), true))
        })];
        let wrapped = detonate_factories(factories);
        let mut fault = wrapped[0]();
        assert_eq!(fault.kind(), FaultKind::StuckAt);
        assert!(fault.lane_form().is_some(), "lane form must be preserved");
        let mut memory = GoodMemory::new(8);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fault.read(&mut memory, Address::new(0))
        }));
        assert!(caught.is_err(), "wrapped read must panic");
    }
}
