//! Arrival traces: recorded job streams for open-loop replay against the
//! daemon.
//!
//! A trace is a text file of one submission per line,
//!
//! ```text
//! offset_ms|name|ROWSxCOLS|seed|algorithm|order|background|backend|population
//! ```
//!
//! where `offset_ms` is the arrival time relative to replay start and
//! `name` is the spool submission name (also the tie-break order for
//! same-offset arrivals, since the daemon scans the spool sorted by
//! name). Blank lines and `#` comments are skipped. The tail after
//! `name` is exactly the spool job-line body, so a trace line is a spool
//! submission plus a timestamp.
//!
//! Replay is **open-loop**: arrivals happen at their recorded offsets
//! whether or not the daemon keeps up — the point of the harness is to
//! drive the daemon into overload and watch it shed, not to politely wait
//! for it. This mirrors how committed serving traces (RAGPulse-style) are
//! replayed against RAG serving stacks.

use std::path::Path;
use std::time::{Duration, Instant};

use crate::error::CampaignError;
use crate::spec::JobSpec;
use crate::spool::{parse_job_line, SpoolDir, SPOOL_JOB_MAGIC};

/// One trace line: a job and when it arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival offset from replay start, in milliseconds.
    pub offset_ms: u64,
    /// Spool submission name.
    pub name: String,
    /// The job to submit.
    pub spec: JobSpec,
}

/// Parses a trace file's text. Events are returned sorted by
/// `(offset_ms, name)`; a malformed line fails the whole parse (a trace
/// is an artifact, not live input — half a trace is a different
/// experiment).
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, CampaignError> {
    let mut events = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: String| CampaignError::InvalidJob {
            job: index as u32,
            reason: format!("trace line {}: {reason}", index + 1),
        };
        let (offset, rest) = line
            .split_once('|')
            .ok_or_else(|| bad("missing offset field".to_string()))?;
        let offset_ms: u64 = offset
            .parse()
            .map_err(|_| bad(format!("bad offset \"{offset}\"")))?;
        let (name, body) = rest
            .split_once('|')
            .ok_or_else(|| bad("missing name field".to_string()))?;
        let spec = parse_job_line(&format!("{SPOOL_JOB_MAGIC}|{body}")).map_err(bad)?;
        events.push(TraceEvent {
            offset_ms,
            name: name.to_string(),
            spec,
        });
    }
    events.sort_by(|a, b| (a.offset_ms, &a.name).cmp(&(b.offset_ms, &b.name)));
    Ok(events)
}

/// Reads and parses a trace file.
pub fn load_trace(path: &Path) -> Result<Vec<TraceEvent>, CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| CampaignError::io(format!("read trace {path:?}"), &error))?;
    parse_trace(&text)
}

/// Replays `events` into `spool` open-loop: each submission is published
/// at its recorded offset from `start`, regardless of whether earlier
/// ones were answered. Returns the number of submissions published.
///
/// Call this from a dedicated thread (it sleeps between arrivals); the
/// daemon's intake loop picks submissions up independently.
pub fn replay_trace(
    spool: &SpoolDir,
    events: &[TraceEvent],
    start: Instant,
) -> Result<usize, CampaignError> {
    replay_trace_injected(
        spool,
        events,
        start,
        &crate::faultpoint::FaultInjector::none(),
    )
}

/// [`replay_trace`] with a fault injector: an event whose ordinal matches
/// an armed [`crate::faultpoint::Injection::TornSpoolWrite`] is written
/// as a torn `.tmp` (a client dying mid-submission) instead of being
/// committed — the daemon must never see it. Returns the number of
/// submissions actually committed.
pub fn replay_trace_injected(
    spool: &SpoolDir,
    events: &[TraceEvent],
    start: Instant,
    injector: &crate::faultpoint::FaultInjector,
) -> Result<usize, CampaignError> {
    let mut committed = 0;
    for (ordinal, event) in events.iter().enumerate() {
        let due = start + Duration::from_millis(event.offset_ms);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        if injector.spool_torn(ordinal as u64) {
            // Tear mid-line: roughly half the job line hits the disk.
            let keep = crate::spool::render_job_line(&event.spec).len() / 2;
            spool.submit_torn(&event.name, &event.spec, keep)?;
        } else {
            spool.submit(&event.name, &event.spec)?;
            committed += 1;
        }
    }
    Ok(committed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spool::render_job_line;
    use march_test::coverage::SweepBackend;

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            rows: 16,
            cols: 16,
            seed,
            algorithm: "March C-".to_string(),
            order: "linear".to_string(),
            background: false,
            backend: SweepBackend::LaneBatched,
            population: crate::spec::PopulationSpec::Mixed { count: 32 },
        }
    }

    fn trace_line(offset: u64, name: &str, seed: u64) -> String {
        let body = render_job_line(&spec(seed));
        let body = body.strip_prefix("CJOB1|").unwrap();
        format!("{offset}|{name}|{body}")
    }

    #[test]
    fn traces_parse_sorted_with_comments_skipped() {
        let text = format!(
            "# an overload burst\n\n{}\n{}\n{}\n",
            trace_line(50, "0002", 3),
            trace_line(0, "0001", 1),
            trace_line(0, "0000", 2),
        );
        let events = parse_trace(&text).expect("parse");
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["0000", "0001", "0002"],
            "sorted by (offset, name)"
        );
        assert_eq!(events[0].spec, spec(2));
        assert_eq!(events[2].offset_ms, 50);
    }

    #[test]
    fn malformed_trace_lines_fail_the_parse() {
        for line in [
            "x|0000|16x16|1|March C-|linear|0|lane|standard",
            "0|0000|16x16|1|March C-|linear|0|warp|standard",
            "0",
            "0|name-only",
        ] {
            let error = parse_trace(line).expect_err(line);
            assert!(
                matches!(error, CampaignError::InvalidJob { .. }),
                "{line:?} -> {error:?}"
            );
        }
    }

    #[test]
    fn replay_publishes_every_event() {
        let dir = std::env::temp_dir().join(format!(
            "campaign-trace-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let spool = SpoolDir::open(&dir).expect("open");
        let events = parse_trace(&format!(
            "{}\n{}\n",
            trace_line(0, "0000", 1),
            trace_line(1, "0001", 2)
        ))
        .expect("parse");
        let published = replay_trace(&spool, &events, Instant::now()).expect("replay");
        assert_eq!(published, 2);
        let scanned = spool.scan().expect("scan");
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].spec, Ok(spec(1)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
