//! The daemon's job-intake spool: a drop directory with atomic-rename
//! semantics, in the same dependency-free style as the CHB1 heartbeat
//! sidecar.
//!
//! Protocol (one flat directory, four file roles by extension):
//!
//! * A client submits a job by writing `<name>.tmp` and `rename(2)`ing it
//!   to `<name>.job`. The rename is the commit point: the daemon only
//!   ever reads `.job` files, so it can never observe a half-written
//!   spec — a crashed client leaves a `.tmp` the daemon ignores forever.
//! * The daemon scans `.job` files in sorted name order (names are the
//!   arrival order under the trace-replay harness), decides the job's
//!   fate, and answers by writing `<name>.resp` — also tmp+rename, so the
//!   client side never reads a torn response either.
//! * An ingested `.job` is renamed to `<name>.done` *after* the journal
//!   append and the response, in that order. A daemon crash between
//!   append and archive re-offers the file on restart and the journal's
//!   digest dedup absorbs it — at-least-once offer, exactly-once run.
//!
//! A job file is one ASCII line:
//!
//! ```text
//! CJOB1|ROWSxCOLS|seed|algorithm|order|background|backend|population
//! ```
//!
//! pipe-separated because algorithm and order names contain spaces, e.g.
//! `CJOB1|32x32|7|March C-|linear|0|lane|mixed:256`. A response file is
//! one ASCII line `CSR1 <status> <detail>` (see [`SpoolResponse`]).

use std::path::{Path, PathBuf};

use march_test::coverage::SweepBackend;

use crate::error::CampaignError;
use crate::spec::{backend_by_name, backend_name, JobSpec, PopulationSpec};

/// Magic token opening every spooled job line.
pub const SPOOL_JOB_MAGIC: &str = "CJOB1";
/// Magic token opening every spool response line.
pub const SPOOL_RESPONSE_MAGIC: &str = "CSR1";

/// The daemon's answer to one spooled submission, written back as
/// `<name>.resp` so the submitting client gets explicit backpressure
/// instead of silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoolResponse {
    /// Admitted: journaled as plan index `job` and queued to run.
    Accepted {
        /// Plan index the daemon assigned.
        job: u32,
    },
    /// A job with the same field digest is already in the plan — the
    /// submission is dropped, the earlier job's results stand.
    Duplicate {
        /// Plan index of the earlier identical job.
        job: u32,
    },
    /// Shed: the bounded admission queue is full. The job was *not*
    /// journaled; the client may resubmit later.
    QueueFull,
    /// The spec does not parse, validate, or fit the journal wire form.
    Rejected {
        /// Why the daemon refused it.
        reason: String,
    },
}

impl SpoolResponse {
    /// One-line wire form, `CSR1 <status> <detail>`.
    pub fn render(&self) -> String {
        match self {
            Self::Accepted { job } => format!("{SPOOL_RESPONSE_MAGIC} accepted {job}\n"),
            Self::Duplicate { job } => format!("{SPOOL_RESPONSE_MAGIC} duplicate {job}\n"),
            Self::QueueFull => format!("{SPOOL_RESPONSE_MAGIC} queue-full -\n"),
            Self::Rejected { reason } => {
                format!(
                    "{SPOOL_RESPONSE_MAGIC} rejected {}\n",
                    reason.replace(['\n', '\r'], " ")
                )
            }
        }
    }

    /// Parses the wire form; `None` for anything torn or foreign.
    pub fn parse(line: &str) -> Option<Self> {
        let rest = line.strip_prefix(SPOOL_RESPONSE_MAGIC)?.strip_prefix(' ')?;
        let (status, detail) = rest.trim_end().split_once(' ')?;
        match status {
            "accepted" => detail.parse().ok().map(|job| Self::Accepted { job }),
            "duplicate" => detail.parse().ok().map(|job| Self::Duplicate { job }),
            "queue-full" => Some(Self::QueueFull),
            "rejected" => Some(Self::Rejected {
                reason: detail.to_string(),
            }),
            _ => None,
        }
    }
}

/// One `.job` file the daemon found during a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// File stem (the part before `.job`) — the submission's identity
    /// for responses and archiving.
    pub name: String,
    /// The parsed spec, or why the line does not parse. A parse failure
    /// still flows through intake so the client gets a `rejected`
    /// response instead of a silently stuck file.
    pub spec: Result<JobSpec, String>,
}

/// Renders a spec as a spool job line (without trailing newline —
/// [`SpoolDir::submit`] adds it).
pub fn render_job_line(spec: &JobSpec) -> String {
    format!(
        "{SPOOL_JOB_MAGIC}|{}x{}|{}|{}|{}|{}|{}|{}",
        spec.rows,
        spec.cols,
        spec.seed,
        spec.algorithm,
        spec.order,
        u8::from(spec.background),
        backend_name(spec.backend),
        spec.population.render()
    )
}

/// Parses a spool job line into a spec, or explains why it cannot be.
pub fn parse_job_line(line: &str) -> Result<JobSpec, String> {
    let line = line.trim_end_matches(['\n', '\r']);
    let mut fields = line.split('|');
    if fields.next() != Some(SPOOL_JOB_MAGIC) {
        return Err(format!("job line must start with {SPOOL_JOB_MAGIC}|"));
    }
    let mut next = |what: &str| {
        fields
            .next()
            .map(str::to_string)
            .ok_or_else(|| format!("job line is missing its {what} field"))
    };
    let organization = next("ROWSxCOLS")?;
    let (rows, cols) = organization
        .split_once('x')
        .and_then(|(rows, cols)| Some((rows.parse::<u32>().ok()?, cols.parse::<u32>().ok()?)))
        .ok_or_else(|| format!("bad organization \"{organization}\" (want ROWSxCOLS)"))?;
    let seed: u64 = {
        let field = next("seed")?;
        field.parse().map_err(|_| format!("bad seed \"{field}\""))?
    };
    let algorithm = next("algorithm")?;
    let order = next("order")?;
    let background = match next("background")?.as_str() {
        "0" => false,
        "1" => true,
        other => return Err(format!("bad background \"{other}\" (want 0 or 1)")),
    };
    let backend: SweepBackend = {
        let field = next("backend")?;
        backend_by_name(&field).ok_or_else(|| format!("unknown backend \"{field}\""))?
    };
    let population = {
        let field = next("population")?;
        PopulationSpec::parse(&field).ok_or_else(|| format!("bad population \"{field}\""))?
    };
    if fields.next().is_some() {
        return Err("job line has trailing fields".to_string());
    }
    Ok(JobSpec {
        rows,
        cols,
        seed,
        algorithm,
        order,
        background,
        backend,
        population,
    })
}

/// A handle on the spool directory — both sides of the protocol.
#[derive(Debug, Clone)]
pub struct SpoolDir {
    dir: PathBuf,
}

impl SpoolDir {
    /// Opens (creating if needed) the spool directory.
    pub fn open(dir: &Path) -> Result<Self, CampaignError> {
        std::fs::create_dir_all(dir).map_err(|error| {
            CampaignError::io(format!("create spool directory {dir:?}"), &error)
        })?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory this spool lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str, extension: &str) -> PathBuf {
        self.dir.join(format!("{name}.{extension}"))
    }

    /// Writes `contents` to `<name>.tmp` and renames it to
    /// `<name>.<extension>` — the protocol's only publish primitive.
    fn publish(&self, name: &str, extension: &str, contents: &str) -> Result<(), CampaignError> {
        let tmp = self.path(name, "tmp");
        let target = self.path(name, extension);
        std::fs::write(&tmp, contents)
            .map_err(|error| CampaignError::io(format!("write spool file {tmp:?}"), &error))?;
        std::fs::rename(&tmp, &target)
            .map_err(|error| CampaignError::io(format!("publish spool file {target:?}"), &error))
    }

    /// Client side: submits a job as `<name>.job` via tmp+rename.
    /// `name` must be a bare file stem (no path separators, no dots).
    pub fn submit(&self, name: &str, spec: &JobSpec) -> Result<(), CampaignError> {
        check_name(name)?;
        self.publish(name, "job", &format!("{}\n", render_job_line(spec)))
    }

    /// Client side, fault harness: writes only the first `keep` bytes of
    /// the job line to `<name>.tmp` and **does not rename** — the torn
    /// write of a client that died mid-submission. The daemon must never
    /// pick it up.
    pub fn submit_torn(
        &self,
        name: &str,
        spec: &JobSpec,
        keep: usize,
    ) -> Result<(), CampaignError> {
        check_name(name)?;
        let line = format!("{}\n", render_job_line(spec));
        let prefix = &line.as_bytes()[..keep.min(line.len())];
        let tmp = self.path(name, "tmp");
        std::fs::write(&tmp, prefix)
            .map_err(|error| CampaignError::io(format!("write torn spool file {tmp:?}"), &error))
    }

    /// Daemon side: all committed `.job` files in sorted name order, each
    /// parsed (parse failures travel as `Err` so intake can reject them
    /// explicitly).
    pub fn scan(&self) -> Result<Vec<Submission>, CampaignError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|error| CampaignError::io(format!("scan spool {:?}", self.dir), &error))?;
        let mut submissions = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|error| CampaignError::io(format!("scan spool {:?}", self.dir), &error))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("job") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let spec = std::fs::read_to_string(&path)
                .map_err(|error| format!("unreadable job file: {error}"))
                .and_then(|line| parse_job_line(&line));
            submissions.push(Submission {
                name: name.to_string(),
                spec,
            });
        }
        submissions.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(submissions)
    }

    /// Daemon side: publishes the response for `name` as `<name>.resp`.
    pub fn respond(&self, name: &str, response: &SpoolResponse) -> Result<(), CampaignError> {
        // Responses publish through a distinct temp name so a response
        // never races a same-named job submission's temp file.
        let tmp = self.path(name, "resp-tmp");
        let target = self.path(name, "resp");
        std::fs::write(&tmp, response.render())
            .map_err(|error| CampaignError::io(format!("write spool response {tmp:?}"), &error))?;
        std::fs::rename(&tmp, &target).map_err(|error| {
            CampaignError::io(format!("publish spool response {target:?}"), &error)
        })
    }

    /// Daemon side: archives an ingested `.job` as `<name>.done`. Called
    /// after the journal append and the response; a crash before this
    /// point re-offers the job on restart and dedup absorbs it.
    pub fn archive(&self, name: &str) -> Result<(), CampaignError> {
        let from = self.path(name, "job");
        let to = self.path(name, "done");
        std::fs::rename(&from, &to)
            .map_err(|error| CampaignError::io(format!("archive spool job {from:?}"), &error))
    }

    /// Client side: reads the daemon's response for `name`, `None` while
    /// it has not been published yet.
    pub fn read_response(&self, name: &str) -> Option<SpoolResponse> {
        let text = std::fs::read_to_string(self.path(name, "resp")).ok()?;
        SpoolResponse::parse(&text)
    }
}

/// Rejects submission names that would escape the spool directory or
/// collide with the protocol's extensions.
fn check_name(name: &str) -> Result<(), CampaignError> {
    let clean = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if clean {
        Ok(())
    } else {
        Err(CampaignError::InvalidJob {
            job: 0,
            reason: format!("spool name {name:?} must be non-empty ASCII alphanumeric with - or _"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::algorithm_catalog;
    use crate::spec::ORDER_CATALOG;

    fn temp_spool(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "campaign-spool-{tag}-{}-{unique}",
            std::process::id()
        ))
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            rows: 16,
            cols: 16,
            seed,
            algorithm: algorithm_catalog()[0].clone(),
            order: ORDER_CATALOG[0].to_string(),
            background: false,
            backend: SweepBackend::LaneBatched,
            population: PopulationSpec::Mixed { count: 32 },
        }
    }

    #[test]
    fn job_lines_round_trip() {
        for (seed, backend, population) in [
            (1, SweepBackend::LaneBatched, PopulationSpec::Standard),
            (
                2,
                SweepBackend::PerFault,
                PopulationSpec::Mixed { count: 600 },
            ),
            (
                3,
                SweepBackend::LaneBatchedListOrder,
                PopulationSpec::Dense { target: 50 },
            ),
        ] {
            let mut job = spec(seed);
            job.backend = backend;
            job.population = population;
            job.background = seed % 2 == 0;
            assert_eq!(parse_job_line(&render_job_line(&job)), Ok(job));
        }
    }

    #[test]
    fn mangled_job_lines_explain_themselves() {
        for (line, needle) in [
            ("", "must start with"),
            ("NOPE|16x16|1|a|b|0|lane|standard", "must start with"),
            ("CJOB1|16z16|1|a|b|0|lane|standard", "organization"),
            ("CJOB1|16x16|x|a|b|0|lane|standard", "seed"),
            ("CJOB1|16x16|1|a|b|2|lane|standard", "background"),
            ("CJOB1|16x16|1|a|b|0|warp|standard", "backend"),
            ("CJOB1|16x16|1|a|b|0|lane|weird:4", "population"),
            ("CJOB1|16x16|1|a|b|0|lane", "population"),
            ("CJOB1|16x16|1|a|b|0|lane|standard|extra", "trailing"),
        ] {
            let error = parse_job_line(line).expect_err(line);
            assert!(error.contains(needle), "{line:?} -> {error:?}");
        }
    }

    #[test]
    fn responses_round_trip_and_reject_torn_lines() {
        for response in [
            SpoolResponse::Accepted { job: 7 },
            SpoolResponse::Duplicate { job: 3 },
            SpoolResponse::QueueFull,
            SpoolResponse::Rejected {
                reason: "unknown backend \"warp\"".to_string(),
            },
        ] {
            assert_eq!(
                SpoolResponse::parse(&response.render()),
                Some(response.clone()),
                "{response:?}"
            );
        }
        for torn in ["", "CSR1", "CSR1 accepted", "CSR1 accepted x", "XXX ok 1"] {
            assert_eq!(SpoolResponse::parse(torn), None, "{torn:?}");
        }
    }

    #[test]
    fn submit_scan_respond_archive_cycle() {
        let dir = temp_spool("cycle");
        let spool = SpoolDir::open(&dir).expect("open");
        spool.submit("0001-a", &spec(1)).expect("submit");
        spool.submit("0000-b", &spec(2)).expect("submit");
        let scanned = spool.scan().expect("scan");
        // Sorted by name, not submission order.
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].name, "0000-b");
        assert_eq!(scanned[0].spec, Ok(spec(2)));
        assert_eq!(scanned[1].name, "0001-a");
        spool
            .respond("0000-b", &SpoolResponse::Accepted { job: 0 })
            .expect("respond");
        spool.archive("0000-b").expect("archive");
        assert_eq!(
            spool.read_response("0000-b"),
            Some(SpoolResponse::Accepted { job: 0 })
        );
        assert_eq!(spool.read_response("0001-a"), None);
        let rescan = spool.scan().expect("rescan");
        assert_eq!(rescan.len(), 1, "archived job must leave the scan");
        assert_eq!(rescan[0].name, "0001-a");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tmp_files_are_never_scanned() {
        let dir = temp_spool("torn");
        let spool = SpoolDir::open(&dir).expect("open");
        let full = render_job_line(&spec(1)).len() + 1;
        for keep in 0..full {
            spool
                .submit_torn(&format!("torn-{keep:04}"), &spec(1), keep)
                .expect("torn submit");
        }
        assert_eq!(
            spool.scan().expect("scan"),
            Vec::new(),
            "no prefix length of a torn .tmp may surface as a job"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_spool_names_are_refused() {
        let dir = temp_spool("names");
        let spool = SpoolDir::open(&dir).expect("open");
        for name in ["", "a/b", "../escape", "dot.dot", "sp ace"] {
            assert!(
                spool.submit(name, &spec(1)).is_err(),
                "{name:?} must be refused"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
