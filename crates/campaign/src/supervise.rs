//! The cross-process shard supervisor: the reliability boundary above
//! `campaign_run`.
//!
//! PR 6 made a *single* campaign process crash-safe; this module owns
//! the multi-process half. [`supervise`] spawns one `campaign_run
//! --shard k/N` child per shard, watches each child's liveness through
//! its heartbeat sidecar ([`crate::heartbeat`]) *and* its journal's
//! growth, and restarts a dead or wedged shard with `--resume` under
//! bounded exponential backoff. Because every child is itself
//! crash-safe, the supervisor's only jobs are *detection* and
//! *policy* — correctness of the restarted work is the journal's
//! problem, already proven byte-identical by the PR 6 harness.
//!
//! The child exit-code contract drives the policy:
//!
//! * `0` — the shard completed; its export is final.
//! * `2` — usage error: the child command line is wrong, restarting
//!   cannot fix it, the whole campaign aborts
//!   ([`CampaignError::Supervisor`]).
//! * `4` — the shard completed but quarantined poisoned jobs; recorded,
//!   **not** retried (the shard's own retry budget already ran out).
//! * `3`, any other code, or death by signal — retryable: the shard
//!   restarts with `--resume` after `backoff_base × 2^restarts`
//!   (capped), until [`SupervisorOptions::restart_budget`] restarts are
//!   burned.
//!
//! A shard that exhausts its restart budget is **quarantined** while
//! the rest run to completion — graceful degradation instead of a
//! stalled sweep. The supervisor then merges whatever shard exports
//! exist into a *partial* export
//! ([`crate::output::merge_shard_exports_partial`]) and writes a
//! manifest naming the missing shards and jobs, so a later manual
//! re-run of just those shards can be merged into the full answer.
//! With every shard complete, the merge is total and byte-identical to
//! an unsharded single-process run — the e2e kill-storm harness pins
//! exactly that.
//!
//! Liveness: a child counts as *making progress* while its heartbeat
//! count or its journal length keeps changing. A heartbeat that goes
//! silent while the journal still grows is tolerated (the sidecar
//! channel died, the work did not); when **both** stop for longer than
//! [`SupervisorOptions::stall_timeout`], the child is wedged — it is
//! SIGKILLed and the restart policy takes over. Restarting always
//! passes `--resume`: a missing journal is a fresh start, so the first
//! launch needs no special case, and re-running a crashed *supervisor*
//! resumes every shard instead of restarting the campaign.

use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use crate::error::CampaignError;
use crate::faultpoint::ProcessInjector;
use crate::heartbeat::read_heartbeat;
use crate::output::{
    merge_shard_exports, merge_shard_exports_partial, JobStatus, PartialMerge, ShardExport,
};

/// How the supervisor launches one shard: the `campaign_run` binary and
/// the plan flags every shard shares (`--organization`, `--seeds`,
/// `--population`, `--threads`, …).
///
/// The supervisor owns the per-shard flags — `--journal`, `--export`,
/// `--heartbeat`, `--shard` and `--resume` — and refuses plan args that
/// try to set them.
#[derive(Debug, Clone)]
pub struct ShardCommand {
    /// Path of the `campaign_run` binary.
    pub program: PathBuf,
    /// Plan flags shared by every shard.
    pub plan_args: Vec<String>,
}

impl ShardCommand {
    /// Builds a shard command.
    pub fn new(program: impl Into<PathBuf>, plan_args: &[&str]) -> Self {
        Self {
            program: program.into(),
            plan_args: plan_args.iter().map(|arg| arg.to_string()).collect(),
        }
    }

    /// The flags the supervisor reserves for itself.
    const RESERVED: [&'static str; 5] = [
        "--journal",
        "--export",
        "--heartbeat",
        "--shard",
        "--resume",
    ];

    fn validate(&self) -> Result<(), CampaignError> {
        for arg in &self.plan_args {
            if Self::RESERVED.contains(&arg.as_str()) {
                return Err(CampaignError::Supervisor {
                    reason: format!(
                        "plan args must not set {arg}: the supervisor owns the per-shard flags"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Number of shard processes (`N` in `--shard k/N`).
    pub shards: u32,
    /// Directory holding every per-shard journal, export and heartbeat.
    pub dir: PathBuf,
    /// Where the merged (possibly partial) export is written.
    pub merged_export: PathBuf,
    /// Where the manifest is written.
    pub manifest: PathBuf,
    /// Restarts each shard may burn before it is quarantined.
    pub restart_budget: u32,
    /// First restart delay; restart `r` waits `backoff_base × 2^(r-1)`.
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
    /// How often the supervisor polls children and sidecars.
    pub poll_interval: Duration,
    /// How long a child may make no progress (no heartbeat change *and*
    /// no journal growth) before it is declared wedged and SIGKILLed.
    pub stall_timeout: Duration,
}

impl SupervisorOptions {
    /// Defaults rooted in `dir`: merged export and manifest live next to
    /// the shard files, budget 3, backoff 100 ms doubling to a 2 s cap,
    /// 25 ms polls, 10 s stall timeout.
    pub fn in_dir(dir: impl Into<PathBuf>, shards: u32) -> Self {
        let dir = dir.into();
        Self {
            shards,
            merged_export: dir.join("merged.bin"),
            manifest: dir.join("manifest.txt"),
            dir,
            restart_budget: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            poll_interval: Duration::from_millis(25),
            stall_timeout: Duration::from_secs(10),
        }
    }

    /// Shard `k`'s journal path.
    pub fn journal_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard}.journal"))
    }

    /// Shard `k`'s partial-export path.
    pub fn export_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard}.bin"))
    }

    /// Shard `k`'s heartbeat sidecar path.
    pub fn heartbeat_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard}.hb"))
    }
}

/// The delay before restart number `restart` (1-based):
/// `base × 2^(restart-1)`, capped.
fn backoff_delay(options: &SupervisorOptions, restart: u32) -> Duration {
    let doublings = restart.saturating_sub(1).min(16);
    let delay = options.backoff_base.saturating_mul(1u32 << doublings);
    delay.min(options.backoff_cap)
}

/// How one shard ended up, for the report and the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFate {
    /// The shard ran to completion (possibly after restarts); exit code
    /// `0`, or `4` when it quarantined poisoned jobs.
    Completed {
        /// `true` when the shard exited `4` (poisoned jobs inside).
        poisoned: bool,
        /// Restarts this shard burned.
        restarts: u32,
    },
    /// The shard exhausted its restart budget and was given up on; its
    /// jobs are missing from the merged export.
    Quarantined {
        /// Restarts this shard burned (the full budget).
        restarts: u32,
        /// The last observed failure, e.g. `"exit code 3"` or
        /// `"wedged: no progress within the stall timeout"`.
        last_failure: String,
    },
}

/// What a supervised campaign produced.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// Digest of the plan, from the merged export header.
    pub plan_digest: u64,
    /// Total jobs in the plan.
    pub total_jobs: u32,
    /// Per-shard fates, indexed by shard.
    pub fates: Vec<ShardFate>,
    /// Plan jobs no surviving shard covered (empty on full success).
    pub missing_jobs: Vec<u32>,
    /// Jobs the surviving shards poison-quarantined.
    pub poisoned_jobs: Vec<u32>,
    /// Restarts across all shards.
    pub restarts: u32,
    /// Where the merged export was written.
    pub merged_export: PathBuf,
    /// Where the manifest was written.
    pub manifest: PathBuf,
}

impl SupervisorReport {
    /// `true` when at least one shard was quarantined — the merged
    /// export is partial and the manifest names what is missing.
    pub fn degraded(&self) -> bool {
        self.fates
            .iter()
            .any(|fate| matches!(fate, ShardFate::Quarantined { .. }))
    }

    /// `true` when any surviving shard carried poisoned jobs.
    pub fn poisoned(&self) -> bool {
        !self.poisoned_jobs.is_empty()
    }
}

/// What a child's exit status means for the restart policy.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ChildOutcome {
    /// Exit `0` or `4`: the shard is done.
    Completed {
        /// Exit `4`: poisoned jobs inside.
        poisoned: bool,
    },
    /// Exit `2`: the command line is wrong; restarting cannot fix it.
    Usage,
    /// Exit `3`, an unexpected code, or death by signal.
    Retryable(String),
}

/// Maps the `campaign_run` exit-code contract onto the restart policy.
fn classify_exit(status: ExitStatus) -> ChildOutcome {
    match status.code() {
        Some(0) => ChildOutcome::Completed { poisoned: false },
        Some(4) => ChildOutcome::Completed { poisoned: true },
        Some(2) => ChildOutcome::Usage,
        Some(code) => ChildOutcome::Retryable(format!("exit code {code}")),
        None => ChildOutcome::Retryable(signal_description(status)),
    }
}

#[cfg(unix)]
fn signal_description(status: ExitStatus) -> String {
    use std::os::unix::process::ExitStatusExt;
    match status.signal() {
        Some(signal) => format!("killed by signal {signal}"),
        None => "killed by a signal".to_string(),
    }
}

#[cfg(not(unix))]
fn signal_description(_status: ExitStatus) -> String {
    "terminated without an exit code".to_string()
}

/// One shard's supervision state.
struct Slot {
    shard: u32,
    child: Option<Child>,
    /// Times this shard has been launched (1 after the first spawn).
    launches: u32,
    last_progress: Instant,
    seen_beats: u64,
    seen_journal_len: u64,
    /// When a scheduled restart is due.
    retry_at: Option<Instant>,
    last_failure: String,
    fate: Option<ShardFate>,
}

impl Slot {
    fn restarts(&self) -> u32 {
        self.launches.saturating_sub(1)
    }
}

/// Runs a supervised N-shard campaign to its terminal state and merges
/// the surviving shard exports. See the module docs for the policy; see
/// [`SupervisorReport::degraded`] for how partial success is reported.
///
/// # Errors
///
/// Fails when a child cannot be spawned, a child reports a usage error,
/// a completed shard's export is unreadable, no shard completes at all,
/// or the merge itself conflicts (which would mean overlapping shard
/// exports — a supervisor bug, not a crash).
pub fn supervise(
    command: &ShardCommand,
    options: &SupervisorOptions,
    injector: &ProcessInjector,
) -> Result<SupervisorReport, CampaignError> {
    if options.shards == 0 {
        return Err(CampaignError::Supervisor {
            reason: "cannot supervise zero shards".to_string(),
        });
    }
    command.validate()?;
    std::fs::create_dir_all(&options.dir).map_err(|error| {
        CampaignError::io(format!("create supervisor dir {:?}", options.dir), &error)
    })?;

    let now = Instant::now();
    let mut slots: Vec<Slot> = (0..options.shards)
        .map(|shard| Slot {
            shard,
            child: None,
            launches: 0,
            last_progress: now,
            seen_beats: 0,
            seen_journal_len: 0,
            retry_at: Some(now), // due immediately: the first launch
            last_failure: String::new(),
            fate: None,
        })
        .collect();

    let result = supervise_loop(command, options, injector, &mut slots);
    // Whatever happened, never leave children behind.
    for slot in &mut slots {
        if let Some(child) = &mut slot.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    result?;

    let fates: Vec<ShardFate> = slots
        .iter()
        .map(|slot| slot.fate.clone().expect("every slot reached a fate"))
        .collect();
    let restarts = slots.iter().map(Slot::restarts).sum();

    // Merge what survived. Quarantined shards have no (complete) export;
    // their jobs surface as `missing_jobs`.
    let mut parts = Vec::new();
    for (slot, fate) in slots.iter().zip(&fates) {
        if matches!(fate, ShardFate::Completed { .. }) {
            let path = options.export_path(slot.shard);
            parts.push(ShardExport::read(slot.shard, &path).map_err(|error| {
                CampaignError::Supervisor {
                    reason: format!(
                        "shard {} completed but its export is unreadable: {error}",
                        slot.shard
                    ),
                }
            })?);
        }
    }
    if parts.is_empty() {
        return Err(CampaignError::Supervisor {
            reason: format!(
                "no shard of {} completed within its restart budget",
                options.shards
            ),
        });
    }
    let degraded = fates
        .iter()
        .any(|fate| matches!(fate, ShardFate::Quarantined { .. }));
    let PartialMerge {
        export,
        missing_jobs,
    } = if degraded {
        merge_shard_exports_partial(&parts)?
    } else {
        let export = merge_shard_exports(&parts)?;
        PartialMerge {
            export,
            missing_jobs: Vec::new(),
        }
    };
    let poisoned_jobs: Vec<u32> = export
        .outcomes
        .iter()
        .filter(|outcome| outcome.status == JobStatus::Poisoned)
        .map(|outcome| outcome.job)
        .collect();

    export.write(&options.merged_export)?;
    let report = SupervisorReport {
        plan_digest: export.plan_digest,
        total_jobs: export.total_jobs,
        fates,
        missing_jobs,
        poisoned_jobs,
        restarts,
        merged_export: options.merged_export.clone(),
        manifest: options.manifest.clone(),
    };
    std::fs::write(&options.manifest, render_manifest(&report)).map_err(|error| {
        CampaignError::io(format!("write manifest {:?}", options.manifest), &error)
    })?;
    Ok(report)
}

/// The polling loop: spawn due shards, reap exits, watch liveness,
/// schedule restarts. Returns once every slot has a fate, or fails fast
/// on spawn failures and child usage errors.
fn supervise_loop(
    command: &ShardCommand,
    options: &SupervisorOptions,
    injector: &ProcessInjector,
    slots: &mut [Slot],
) -> Result<(), CampaignError> {
    while slots.iter().any(|slot| slot.fate.is_none()) {
        for slot in slots.iter_mut() {
            if slot.fate.is_some() {
                continue;
            }
            if slot.child.is_some() {
                poll_child(options, injector, slot)?;
            } else if let Some(due) = slot.retry_at {
                if Instant::now() >= due {
                    spawn_shard(command, options, injector, slot)?;
                }
            }
        }
        std::thread::sleep(options.poll_interval);
    }
    Ok(())
}

/// Launches (or relaunches) one shard child. Always passes `--resume`:
/// a missing journal is a fresh start, and an existing one is exactly
/// what the restart is for.
fn spawn_shard(
    command: &ShardCommand,
    options: &SupervisorOptions,
    injector: &ProcessInjector,
    slot: &mut Slot,
) -> Result<(), CampaignError> {
    // A stale sidecar from the previous life would count as beats the
    // new child never made (and could fire kill injections spuriously).
    let _ = std::fs::remove_file(options.heartbeat_path(slot.shard));
    slot.seen_beats = 0;
    let mut child = Command::new(&command.program);
    child
        .args(&command.plan_args)
        .arg("--journal")
        .arg(options.journal_path(slot.shard))
        .arg("--export")
        .arg(options.export_path(slot.shard))
        .arg("--heartbeat")
        .arg(options.heartbeat_path(slot.shard))
        .arg("--shard")
        .arg(format!("{}/{}", slot.shard, options.shards))
        .arg("--resume")
        .args(injector.child_args(slot.shard, slot.launches))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    let spawned = child.spawn().map_err(|error| CampaignError::Supervisor {
        reason: format!(
            "cannot spawn shard {} ({:?}): {error}",
            slot.shard, command.program
        ),
    })?;
    slot.child = Some(spawned);
    slot.launches += 1;
    slot.retry_at = None;
    slot.last_progress = Instant::now();
    Ok(())
}

/// One poll of a running child: reap an exit, otherwise check liveness
/// and the kill injection.
fn poll_child(
    options: &SupervisorOptions,
    injector: &ProcessInjector,
    slot: &mut Slot,
) -> Result<(), CampaignError> {
    let child = slot.child.as_mut().expect("poll_child needs a child");
    let status = child.try_wait().map_err(|error| {
        CampaignError::io(format!("wait for shard {} child", slot.shard), &error)
    })?;
    if let Some(status) = status {
        slot.child = None;
        return match classify_exit(status) {
            ChildOutcome::Completed { poisoned } => {
                slot.fate = Some(ShardFate::Completed {
                    poisoned,
                    restarts: slot.restarts(),
                });
                Ok(())
            }
            ChildOutcome::Usage => Err(CampaignError::Supervisor {
                reason: format!(
                    "shard {} exited with a usage error — the child command line is wrong \
                     and restarting cannot fix it",
                    slot.shard
                ),
            }),
            ChildOutcome::Retryable(reason) => {
                schedule_restart(options, slot, reason);
                Ok(())
            }
        };
    }

    // Still running: progress is a changed heartbeat *or* a grown
    // journal — a silent heartbeat alone does not condemn a shard whose
    // journal still moves.
    let beats = read_heartbeat(&options.heartbeat_path(slot.shard))
        .map(|snapshot| snapshot.beats)
        .unwrap_or(0);
    let journal_len = std::fs::metadata(options.journal_path(slot.shard))
        .map(|meta| meta.len())
        .unwrap_or(0);
    if beats != slot.seen_beats || journal_len != slot.seen_journal_len {
        slot.seen_beats = beats;
        slot.seen_journal_len = journal_len;
        slot.last_progress = Instant::now();
    }
    if injector.kill_due(slot.shard, beats) {
        kill_child(slot);
        schedule_restart(options, slot, "injected child SIGKILL".to_string());
    } else if slot.last_progress.elapsed() > options.stall_timeout {
        kill_child(slot);
        schedule_restart(
            options,
            slot,
            "wedged: no heartbeat or journal growth within the stall timeout".to_string(),
        );
    }
    Ok(())
}

/// SIGKILLs and reaps a slot's child (best-effort: the child may win the
/// race and exit first, which is fine — `--resume` makes an unnecessary
/// restart a no-op).
fn kill_child(slot: &mut Slot) {
    if let Some(mut child) = slot.child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Burns one restart (or the quarantine) for a failed shard life.
fn schedule_restart(options: &SupervisorOptions, slot: &mut Slot, reason: String) {
    slot.last_failure = reason;
    if slot.restarts() >= options.restart_budget {
        slot.fate = Some(ShardFate::Quarantined {
            restarts: slot.restarts(),
            last_failure: slot.last_failure.clone(),
        });
    } else {
        let restart = slot.restarts() + 1;
        slot.retry_at = Some(Instant::now() + backoff_delay(options, restart));
    }
}

/// Renders the manifest: the plan identity, every shard's fate, and —
/// the point of the file — exactly which shards and jobs are missing
/// from a degraded merge, so a later manual re-run knows what to run.
pub fn render_manifest(report: &SupervisorReport) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(text, "campaign supervisor manifest v1");
    let _ = writeln!(text, "plan {:#018x}", report.plan_digest);
    let _ = writeln!(
        text,
        "jobs {}/{}",
        report.total_jobs as usize - report.missing_jobs.len(),
        report.total_jobs
    );
    let _ = writeln!(text, "shards {}", report.fates.len());
    for (shard, fate) in report.fates.iter().enumerate() {
        match fate {
            ShardFate::Completed { poisoned, restarts } => {
                let poison = if *poisoned {
                    " poisoned-jobs-inside"
                } else {
                    ""
                };
                let _ = writeln!(text, "shard {shard}: completed restarts={restarts}{poison}");
            }
            ShardFate::Quarantined {
                restarts,
                last_failure,
            } => {
                let _ = writeln!(
                    text,
                    "shard {shard}: quarantined restarts={restarts} last-failure=\"{last_failure}\""
                );
            }
        }
    }
    let _ = writeln!(
        text,
        "missing-shards {}",
        render_list(missing_shards(report))
    );
    let _ = writeln!(
        text,
        "missing-jobs {}",
        render_list(report.missing_jobs.iter().copied())
    );
    let _ = writeln!(
        text,
        "poisoned-jobs {}",
        render_list(report.poisoned_jobs.iter().copied())
    );
    text
}

/// Shard indices whose fate is quarantined.
fn missing_shards(report: &SupervisorReport) -> impl Iterator<Item = u32> + '_ {
    report
        .fates
        .iter()
        .enumerate()
        .filter(|(_, fate)| matches!(fate, ShardFate::Quarantined { .. }))
        .map(|(shard, _)| shard as u32)
}

/// `-` for an empty list, else comma-separated.
fn render_list(items: impl Iterator<Item = u32>) -> String {
    let rendered: Vec<String> = items.map(|item| item.to_string()).collect();
    if rendered.is_empty() {
        "-".to_string()
    } else {
        rendered.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_caps() {
        let mut options = SupervisorOptions::in_dir("/tmp/x", 2);
        options.backoff_base = Duration::from_millis(100);
        options.backoff_cap = Duration::from_millis(450);
        assert_eq!(backoff_delay(&options, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(&options, 2), Duration::from_millis(200));
        assert_eq!(backoff_delay(&options, 3), Duration::from_millis(400));
        assert_eq!(backoff_delay(&options, 4), Duration::from_millis(450));
        assert_eq!(backoff_delay(&options, 40), Duration::from_millis(450));
    }

    #[cfg(unix)]
    #[test]
    fn exit_codes_map_onto_the_restart_policy() {
        use std::os::unix::process::ExitStatusExt;
        let code = |code: i32| ExitStatus::from_raw(code << 8);
        assert_eq!(
            classify_exit(code(0)),
            ChildOutcome::Completed { poisoned: false }
        );
        assert_eq!(
            classify_exit(code(4)),
            ChildOutcome::Completed { poisoned: true }
        );
        assert_eq!(classify_exit(code(2)), ChildOutcome::Usage);
        assert_eq!(
            classify_exit(code(3)),
            ChildOutcome::Retryable("exit code 3".to_string())
        );
        assert_eq!(
            classify_exit(code(7)),
            ChildOutcome::Retryable("exit code 7".to_string())
        );
        // Raw status 9: killed by SIGKILL, no exit code.
        assert_eq!(
            classify_exit(ExitStatus::from_raw(9)),
            ChildOutcome::Retryable("killed by signal 9".to_string())
        );
    }

    #[test]
    fn reserved_flags_are_refused_in_plan_args() {
        let command = ShardCommand::new("/bin/true", &["--seeds", "1,2", "--journal", "x"]);
        match command.validate() {
            Err(CampaignError::Supervisor { reason }) => {
                assert!(reason.contains("--journal"), "{reason}");
            }
            other => panic!("expected Supervisor error, got {other:?}"),
        }
        assert!(ShardCommand::new("/bin/true", &["--seeds", "1,2"])
            .validate()
            .is_ok());
    }

    #[test]
    fn manifest_names_fates_missing_shards_and_jobs() {
        let report = SupervisorReport {
            plan_digest: 0xABCD,
            total_jobs: 9,
            fates: vec![
                ShardFate::Completed {
                    poisoned: false,
                    restarts: 1,
                },
                ShardFate::Quarantined {
                    restarts: 3,
                    last_failure: "exit code 3".to_string(),
                },
                ShardFate::Completed {
                    poisoned: true,
                    restarts: 0,
                },
            ],
            missing_jobs: vec![1, 4, 7],
            poisoned_jobs: vec![5],
            restarts: 4,
            merged_export: PathBuf::from("/runs/merged.bin"),
            manifest: PathBuf::from("/runs/manifest.txt"),
        };
        assert!(report.degraded());
        assert!(report.poisoned());
        let manifest = render_manifest(&report);
        let expected = "campaign supervisor manifest v1\n\
                        plan 0x000000000000abcd\n\
                        jobs 6/9\n\
                        shards 3\n\
                        shard 0: completed restarts=1\n\
                        shard 1: quarantined restarts=3 last-failure=\"exit code 3\"\n\
                        shard 2: completed restarts=0 poisoned-jobs-inside\n\
                        missing-shards 1\n\
                        missing-jobs 1,4,7\n\
                        poisoned-jobs 5\n";
        assert_eq!(manifest, expected);
    }

    #[test]
    fn shard_paths_are_rooted_in_the_dir() {
        let options = SupervisorOptions::in_dir("/runs/campaign", 3);
        assert_eq!(
            options.journal_path(1),
            PathBuf::from("/runs/campaign/shard-1.journal")
        );
        assert_eq!(
            options.export_path(2),
            PathBuf::from("/runs/campaign/shard-2.bin")
        );
        assert_eq!(
            options.heartbeat_path(0),
            PathBuf::from("/runs/campaign/shard-0.hb")
        );
        assert_eq!(
            options.merged_export,
            PathBuf::from("/runs/campaign/merged.bin")
        );
        assert_eq!(
            options.manifest,
            PathBuf::from("/runs/campaign/manifest.txt")
        );
    }
}
