//! The daemon's intake suite: dynamic submissions, backpressure,
//! deadlines, drain and crash-resume — every robustness claim of
//! `campaign::daemon`, pinned against the static runner.
//!
//! The core invariant: a daemon campaign over jobs `J0..Jn` (however
//! raggedly they arrived, crashed, or timed out) exports bytes identical
//! to `campaign_run` executing the same jobs as a static up-front plan.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use campaign::daemon::{run_daemon, DaemonOptions};
use campaign::runner::{run_campaign, CampaignOptions};
use campaign::spec::{CampaignPlan, JobSpec, PopulationSpec};
use campaign::spool::{SpoolDir, SpoolResponse};
use campaign::{CampaignError, FaultInjector, Injection, JobStatus, Shard};
use march_test::coverage::SweepBackend;

/// A unique temp path per call, so parallel tests never collide.
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "campaign-daemon-{tag}-{}-{unique}",
        std::process::id()
    ))
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        rows: 16,
        cols: 16,
        seed,
        algorithm: "March C-".to_string(),
        order: "linear".to_string(),
        background: false,
        backend: SweepBackend::LaneBatched,
        population: PopulationSpec::Mixed { count: 64 },
    }
}

fn jobs(count: u64) -> Vec<JobSpec> {
    (1..=count).map(spec).collect()
}

/// Options for a batch-style daemon run: quiesce once the spool drains.
fn quiesce_options(threads: usize) -> DaemonOptions {
    let options = DaemonOptions {
        threads,
        backoff: Duration::ZERO,
        poll_interval: Duration::ZERO,
        ..DaemonOptions::default()
    };
    options.quiesce.store(true, Ordering::SeqCst);
    options
}

/// Spools `specs` under names that sort in list order.
fn spool_all(spool: &SpoolDir, specs: &[JobSpec]) {
    for (index, spec) in specs.iter().enumerate() {
        spool.submit(&format!("j{index:04}"), spec).expect("submit");
    }
}

/// The equivalent static campaign's export bytes.
fn static_export(specs: &[JobSpec], threads: usize, tag: &str) -> Vec<u8> {
    let journal = temp_path(tag);
    let plan = CampaignPlan::new(specs.to_vec());
    let summary = run_campaign(
        &plan,
        Shard::whole(),
        &journal,
        &CampaignOptions {
            threads,
            backoff: Duration::ZERO,
            ..CampaignOptions::default()
        },
        &FaultInjector::none(),
    )
    .expect("static run");
    std::fs::remove_file(&journal).ok();
    summary.export.to_bytes()
}

#[test]
fn daemon_export_matches_the_equivalent_static_plan_byte_for_byte() {
    let specs = jobs(6);
    for threads in [1, 4] {
        let dir = temp_path("equiv-spool");
        let journal = temp_path("equiv");
        let spool = SpoolDir::open(&dir).expect("spool");
        spool_all(&spool, &specs);
        let summary = run_daemon(
            &spool,
            &journal,
            &quiesce_options(threads),
            &FaultInjector::none(),
        )
        .expect("daemon run");
        assert_eq!(summary.accepted, 6);
        assert_eq!(summary.shed + summary.rejected + summary.duplicates, 0);
        assert_eq!(
            summary.export.to_bytes(),
            static_export(&specs, threads, "equiv-static"),
            "daemon export must equal the static plan's at {threads} threads"
        );
        // Every submission got an explicit accepted response.
        for index in 0..specs.len() {
            assert_eq!(
                spool.read_response(&format!("j{index:04}")),
                Some(SpoolResponse::Accepted { job: index as u32 })
            );
        }
        std::fs::remove_file(&journal).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn duplicate_submissions_answer_duplicate_and_run_once() {
    let dir = temp_path("dup-spool");
    let journal = temp_path("dup");
    let spool = SpoolDir::open(&dir).expect("spool");
    spool.submit("j0000", &spec(1)).expect("submit");
    spool.submit("j0001", &spec(2)).expect("submit");
    // Same spec bytes under two more names: digest dedup must absorb
    // both and point at the original plan index.
    spool.submit("j0002", &spec(1)).expect("submit");
    spool.submit("j0003", &spec(2)).expect("submit");
    let summary = run_daemon(
        &spool,
        &journal,
        &quiesce_options(2),
        &FaultInjector::none(),
    )
    .expect("daemon run");
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.duplicates, 2);
    assert_eq!(summary.plan.len(), 2);
    assert_eq!(
        spool.read_response("j0002"),
        Some(SpoolResponse::Duplicate { job: 0 })
    );
    assert_eq!(
        spool.read_response("j0003"),
        Some(SpoolResponse::Duplicate { job: 1 })
    );
    assert_eq!(
        summary.export.to_bytes(),
        static_export(&jobs(2), 2, "dup-static")
    );
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_explicitly_instead_of_growing_the_queue() {
    let dir = temp_path("shed-spool");
    let journal = temp_path("shed");
    let spool = SpoolDir::open(&dir).expect("spool");
    let specs = jobs(8);
    spool_all(&spool, &specs);
    // One worker, queue bounded at 2: the first scan happens before any
    // job runs, so it deterministically admits 2 and sheds 6.
    let options = DaemonOptions {
        queue_limit: 2,
        ..quiesce_options(1)
    };
    let summary =
        run_daemon(&spool, &journal, &options, &FaultInjector::none()).expect("daemon run");
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.shed, 6);
    assert_eq!(summary.plan.len(), 2, "shed jobs are never journaled");
    for index in 2..8 {
        assert_eq!(
            spool.read_response(&format!("j{index:04}")),
            Some(SpoolResponse::QueueFull),
            "submission {index} must be told it was shed"
        );
    }
    // The admitted prefix still exports exactly like its static plan.
    assert_eq!(
        summary.export.to_bytes(),
        static_export(&specs[..2], 1, "shed-static")
    );
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unparsable_and_invalid_submissions_are_rejected_explicitly() {
    let dir = temp_path("reject-spool");
    let journal = temp_path("reject");
    let spool = SpoolDir::open(&dir).expect("spool");
    spool.submit("j0000", &spec(1)).expect("submit");
    // A committed .job whose body does not parse.
    std::fs::write(dir.join("j0001.job"), "CJOB1|not-a-job\n").expect("write");
    // A parse-clean spec that fails validation (unknown algorithm).
    let mut unknown = spec(2);
    unknown.algorithm = "March Nope".to_string();
    spool.submit("j0002", &unknown).expect("submit");
    let summary = run_daemon(
        &spool,
        &journal,
        &quiesce_options(2),
        &FaultInjector::none(),
    )
    .expect("daemon run");
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.rejected, 2);
    assert_eq!(summary.plan.len(), 1);
    for name in ["j0001", "j0002"] {
        match spool.read_response(name) {
            Some(SpoolResponse::Rejected { .. }) => {}
            other => panic!("{name}: expected Rejected, got {other:?}"),
        }
    }
    assert_eq!(
        summary.export.to_bytes(),
        static_export(&jobs(1), 2, "reject-static")
    );
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_storm_journals_timeouts_and_still_converges() {
    let specs = jobs(3);
    let dir = temp_path("deadline-spool");
    let journal = temp_path("deadline");
    let spool = SpoolDir::open(&dir).expect("spool");
    spool_all(&spool, &specs);
    // Job 1 stalls 2000ms on its first two attempts against a 100ms
    // deadline: both attempts are journaled timed-out, the third runs
    // clean — so the final export is the clean one.
    let options = DaemonOptions {
        deadline: Some(Duration::from_millis(100)),
        ..quiesce_options(2)
    };
    let injector = FaultInjector::new(vec![Injection::StallJob {
        job: 1,
        attempts: 2,
        delay_ms: 2000,
    }]);
    let summary = run_daemon(&spool, &journal, &options, &injector).expect("daemon run");
    assert_eq!(summary.timed_out, 2, "both stalled attempts must time out");
    assert_eq!(summary.retries, 2);
    assert!(summary.poisoned.is_empty());
    assert_eq!(
        summary.export.to_bytes(),
        static_export(&specs, 2, "deadline-static"),
        "timed-out attempts must not change the final export"
    );
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_exhaustion_quarantines_instead_of_wedging() {
    let dir = temp_path("exhaust-spool");
    let journal = temp_path("exhaust");
    let spool = SpoolDir::open(&dir).expect("spool");
    spool_all(&spool, &jobs(2));
    // Job 0 stalls past the deadline on every allowed attempt: it must
    // end poison-quarantined while job 1 completes normally — and the
    // whole run must finish long before 3 × 60s of stalls would.
    let options = DaemonOptions {
        max_attempts: 3,
        deadline: Some(Duration::from_millis(50)),
        ..quiesce_options(2)
    };
    let injector = FaultInjector::new(vec![Injection::StallJob {
        job: 0,
        attempts: 3,
        delay_ms: 60_000,
    }]);
    let summary = run_daemon(&spool, &journal, &options, &injector).expect("daemon run");
    assert_eq!(summary.timed_out, 3);
    assert_eq!(summary.poisoned, vec![0]);
    let outcomes = &summary.export.outcomes;
    assert_eq!(outcomes[0].status, JobStatus::Poisoned);
    assert_eq!(outcomes[1].status, JobStatus::Completed);
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Crashes the daemon via `injections`, then resumes cold (with the
/// spool re-offering whatever was never archived) and returns the final
/// export bytes.
fn crash_then_resume(
    specs: &[JobSpec],
    injections: Vec<Injection>,
    threads: usize,
    tag: &str,
) -> Vec<u8> {
    let dir = temp_path(&format!("{tag}-spool"));
    let journal = temp_path(tag);
    let spool = SpoolDir::open(&dir).expect("spool");
    spool_all(&spool, specs);
    let first = run_daemon(
        &spool,
        &journal,
        &quiesce_options(threads),
        &FaultInjector::new(injections),
    );
    match first {
        Err(CampaignError::Injected { .. }) => {}
        other => panic!("expected an injected crash, got {other:?}"),
    }
    // Crash-resume: also re-offer the whole stream (a retrying client);
    // archive state plus digest dedup must absorb every duplicate.
    for (index, spec) in specs.iter().enumerate() {
        let name = format!("r{index:04}");
        spool.submit(&name, spec).expect("resubmit");
    }
    let options = DaemonOptions {
        resume: true,
        ..quiesce_options(threads)
    };
    let summary =
        run_daemon(&spool, &journal, &options, &FaultInjector::none()).expect("resumed run");
    assert_eq!(summary.plan.jobs, specs, "plan must survive the crash");
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
    summary.export.to_bytes()
}

#[test]
fn crash_mid_intake_resumes_byte_identical() {
    let specs = jobs(4);
    let clean = static_export(&specs, 1, "midintake-static");
    // Die between spool-accept and journal-append of each submission
    // ordinal in turn; every crash point must resume to identical bytes.
    for ordinal in 0..4 {
        let resumed = crash_then_resume(
            &specs,
            vec![Injection::CrashMidIntake {
                submission: ordinal,
            }],
            1,
            "midintake",
        );
        assert_eq!(
            resumed, clean,
            "crash at intake ordinal {ordinal} must resume byte-identical"
        );
    }
}

#[test]
fn torn_job_added_append_resumes_byte_identical() {
    let specs = jobs(4);
    let clean = static_export(&specs, 1, "tornadd-static");
    // With one worker the first scan admits all four jobs as journal
    // records 0..4; tearing record 2 tears the third JobAdded append.
    let resumed = crash_then_resume(
        &specs,
        vec![Injection::TornJournalWrite { record: 2 }],
        1,
        "tornadd",
    );
    assert_eq!(resumed, clean);
    // A flipped byte in a JobAdded record must likewise be discarded by
    // the checksum on resume, not replayed as a different job.
    let resumed = crash_then_resume(
        &specs,
        vec![Injection::FlipJournalByte {
            record: 1,
            byte: 20,
        }],
        1,
        "flipadd",
    );
    assert_eq!(resumed, clean);
}

#[test]
fn abort_between_jobs_resumes_byte_identical() {
    let specs = jobs(5);
    let clean = static_export(&specs, 2, "abort-static");
    let resumed = crash_then_resume(
        &specs,
        vec![Injection::AbortAfterRecords { count: 7 }],
        2,
        "abort",
    );
    assert_eq!(resumed, clean);
}

#[test]
fn shutdown_flag_drains_gracefully() {
    let dir = temp_path("drain-spool");
    let journal = temp_path("drain");
    let spool = SpoolDir::open(&dir).expect("spool");
    let specs = jobs(4);
    spool_all(&spool, &specs);
    // Service mode (no quiesce): the run would serve forever. A watcher
    // thread waits until every submission is answered, then trips the
    // drain flag — intake stops, admitted work finishes, the run
    // returns.
    let options = DaemonOptions {
        threads: 2,
        backoff: Duration::ZERO,
        poll_interval: Duration::ZERO,
        job_delay: Duration::from_millis(20),
        ..DaemonOptions::default()
    };
    let shutdown = Arc::clone(&options.shutdown);
    let watcher_spool = spool.clone();
    let watcher = std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let answered = (0..4).all(|index| {
                watcher_spool
                    .read_response(&format!("j{index:04}"))
                    .is_some()
            });
            if answered || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        shutdown.store(true, Ordering::SeqCst);
    });
    let summary =
        run_daemon(&spool, &journal, &options, &FaultInjector::none()).expect("daemon run");
    watcher.join().expect("watcher");
    assert!(summary.drained, "the run must report a graceful drain");
    assert_eq!(summary.accepted, 4);
    assert_eq!(
        summary.export.to_bytes(),
        static_export(&specs, 2, "drain-static"),
        "a drained daemon leaves every admitted job with a final outcome"
    );
    // The journal it left behind is clean: a resume replays it without
    // truncating a single byte and finds nothing left to do.
    let reopened = run_daemon(
        &spool,
        &journal,
        &DaemonOptions {
            resume: true,
            ..quiesce_options(1)
        },
        &FaultInjector::none(),
    )
    .expect("reopen");
    assert_eq!(reopened.skipped, 4);
    assert_eq!(reopened.executed, 0);
    assert_eq!(reopened.export.to_bytes(), summary.export.to_bytes());
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_journal_kind_fails_with_a_directing_error() {
    let dir = temp_path("kind-spool");
    let journal = temp_path("kind");
    let spool = SpoolDir::open(&dir).expect("spool");
    // A static campaign writes a v1 journal; the daemon must refuse to
    // resume it and say which tool can.
    let plan = CampaignPlan::new(jobs(2));
    run_campaign(
        &plan,
        Shard::whole(),
        &journal,
        &CampaignOptions {
            threads: 1,
            backoff: Duration::ZERO,
            ..CampaignOptions::default()
        },
        &FaultInjector::none(),
    )
    .expect("static run");
    let options = DaemonOptions {
        resume: true,
        ..quiesce_options(1)
    };
    match run_daemon(&spool, &journal, &options, &FaultInjector::none()) {
        Err(CampaignError::Corrupt { reason, .. }) => {
            assert!(reason.contains("campaign_run"), "got: {reason}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&journal).ok();
    std::fs::remove_dir_all(&dir).ok();
}
