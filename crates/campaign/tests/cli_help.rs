//! `--help` contract tests for the three campaign binaries: each must
//! exit 0 and print an exit-code table that names every code the binary
//! can return, matching the README's tables — scripts are written
//! against these, so the help text is an interface, not décor.

use std::process::Command;

/// Runs `binary --help` and returns its stdout, asserting exit 0.
fn help_output(binary: &str) -> String {
    let output = Command::new(binary)
        .arg("--help")
        .output()
        .unwrap_or_else(|error| panic!("spawn {binary}: {error}"));
    assert!(
        output.status.success(),
        "{binary} --help must exit 0, got {:?}",
        output.status
    );
    String::from_utf8(output.stdout).expect("help is utf-8")
}

/// Asserts the help text has an exit-code table listing exactly `codes`,
/// each as a `  N  description` line.
fn assert_exit_codes(binary: &str, help: &str, codes: &[u8]) {
    assert!(
        help.contains("exit codes:"),
        "{binary} --help must contain an exit-code table"
    );
    let table = help.split("exit codes:").nth(1).expect("table follows");
    for &code in codes {
        assert!(
            table
                .lines()
                .any(|line| line.trim_start().starts_with(&format!("{code}  "))),
            "{binary} --help must document exit code {code}:\n{help}"
        );
    }
    // No undocumented codes: every table line starts with a listed code.
    for line in table.lines().filter(|line| !line.trim().is_empty()) {
        let first = line.split_whitespace().next().expect("token");
        if let Ok(code) = first.parse::<u8>() {
            assert!(
                codes.contains(&code),
                "{binary} --help lists exit code {code}, which this test does not expect"
            );
        }
    }
}

#[test]
fn campaign_run_help_documents_its_exit_codes() {
    let help = help_output(env!("CARGO_BIN_EXE_campaign_run"));
    assert_exit_codes("campaign_run", &help, &[0, 2, 3, 4]);
}

#[test]
fn campaign_daemon_help_documents_its_exit_codes() {
    let help = help_output(env!("CARGO_BIN_EXE_campaign_daemon"));
    assert_exit_codes("campaign_daemon", &help, &[0, 2, 3, 4]);
    for flag in [
        "--spool",
        "--journal",
        "--trace",
        "--deadline-ms",
        "--queue-limit",
    ] {
        assert!(help.contains(flag), "daemon help must document {flag}");
    }
}

#[test]
fn campaign_supervisor_help_documents_its_exit_codes() {
    let help = help_output(env!("CARGO_BIN_EXE_campaign_supervisor"));
    assert_exit_codes("campaign_supervisor", &help, &[0, 2, 3, 4, 5]);
}
