//! End-to-end supervisor tests against the real `campaign_run` binary.
//!
//! These spawn actual child processes (via `CARGO_BIN_EXE_campaign_run`)
//! and drive them through the supervisor under seeded process-level
//! faults:
//!
//! 1. the kill-storm: two injected child SIGKILLs, one wedged child
//!    (recovered by the stall-timeout kill) and one silent heartbeat —
//!    the merged export must be **byte-identical** to an uninterrupted
//!    single-process run;
//! 2. a silent heartbeat over a *growing* journal must not be mistaken
//!    for a wedge (journal growth is the fallback liveness signal);
//! 3. restart-budget exhaustion: a shard that crashes on every launch is
//!    quarantined, the merged export is partial, the manifest names the
//!    missing shard and jobs, and a later manual re-run of that one
//!    shard merges cleanly into the full answer — including through the
//!    `campaign_supervisor` binary's exit-code contract (5 = degraded).
//!
//! Timing margins are generous: this suite must pass on a loaded
//! single-core machine. Progress ticks every `--job-delay-ms` (150 ms);
//! stall timeouts sit several multiples above that.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use campaign::runner::{run_campaign, CampaignOptions};
use campaign::spec::{CampaignPlan, PopulationSpec};
use campaign::supervise::{supervise, ShardCommand, ShardFate, SupervisorOptions};
use campaign::{FaultInjector, ProcessInjection, ProcessInjector, Shard, ShardExport};
use march_test::coverage::SweepBackend;

/// A unique temp dir per call, so parallel tests never collide.
fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "campaign-supervise-{tag}-{}-{unique}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The plan flags every child receives; [`storm_plan`] builds the same
/// plan in-process so the supervised runs can be compared against an
/// uninterrupted one. 3 seeds × 2 algorithms × 2 orders = 12 jobs.
const PLAN_FLAGS: [&str; 16] = [
    "--organization",
    "16x16",
    "--seeds",
    "1,2,3",
    "--algorithms",
    "March C-,MATS+",
    "--orders",
    "word line after word line,pseudo-random",
    "--backgrounds",
    "0",
    "--population",
    "mixed:120",
    "--backend",
    "lane",
    "--threads",
    "1",
];

fn storm_plan() -> CampaignPlan {
    CampaignPlan::cross(
        16,
        16,
        &[1, 2, 3],
        &["March C-".to_string(), "MATS+".to_string()],
        &[
            "word line after word line".to_string(),
            "pseudo-random".to_string(),
        ],
        &[false],
        SweepBackend::LaneBatched,
        PopulationSpec::Mixed { count: 120 },
    )
}

/// The uninterrupted single-process export bytes for [`storm_plan`].
fn clean_export_bytes(tag: &str) -> Vec<u8> {
    let dir = temp_dir(tag);
    let journal = dir.join("clean.journal");
    let summary = run_campaign(
        &storm_plan(),
        Shard::whole(),
        &journal,
        &CampaignOptions {
            threads: 1,
            backoff: Duration::ZERO,
            ..CampaignOptions::default()
        },
        &FaultInjector::none(),
    )
    .expect("clean run");
    std::fs::remove_dir_all(&dir).ok();
    summary.export.to_bytes()
}

/// A [`ShardCommand`] targeting the real `campaign_run` binary with the
/// shared plan flags plus `extra`.
fn child_command(extra: &[&str]) -> ShardCommand {
    let mut plan_args: Vec<&str> = PLAN_FLAGS.to_vec();
    plan_args.extend_from_slice(extra);
    ShardCommand::new(env!("CARGO_BIN_EXE_campaign_run"), &plan_args)
}

#[test]
fn kill_storm_merges_byte_identical_to_a_single_process_run() {
    let clean = clean_export_bytes("storm-clean");
    let dir = temp_dir("storm");
    let mut options = SupervisorOptions::in_dir(&dir, 3);
    options.backoff_base = Duration::from_millis(50);
    options.backoff_cap = Duration::from_millis(200);
    options.poll_interval = Duration::from_millis(15);
    options.stall_timeout = Duration::from_millis(2500);
    // The storm: shard 0 is SIGKILLed twice (once per life, as soon as a
    // job lands), shard 1 wedges after its first job on its first launch
    // (recovered by the stall-timeout kill), shard 2's heartbeat goes
    // silent after its first job while its journal keeps growing.
    let injector = ProcessInjector::new(vec![
        ProcessInjection::KillChild {
            shard: 0,
            after_beats: 2,
        },
        ProcessInjection::KillChild {
            shard: 0,
            after_beats: 2,
        },
    ])
    .with_first_launch_args(1, &["--wedge-after", "1"])
    .with_first_launch_args(2, &["--stall-heartbeat-after", "1"]);

    let report = supervise(
        &child_command(&["--job-delay-ms", "150"]),
        &options,
        &injector,
    )
    .expect("the storm must not sink the campaign");

    assert_eq!(injector.unfired_kills(), 0, "both kills must have fired");
    assert!(!report.degraded() && !report.poisoned());
    assert!(report.missing_jobs.is_empty());
    assert_eq!(report.total_jobs, 12);
    let restarts = |shard: usize| match &report.fates[shard] {
        ShardFate::Completed { restarts, .. } => *restarts,
        other => panic!("shard {shard} must complete, got {other:?}"),
    };
    assert_eq!(restarts(0), 2, "shard 0 dies twice, completes third life");
    assert_eq!(restarts(1), 1, "the wedged shard is killed and restarted");
    assert_eq!(restarts(2), 0, "a silent heartbeat alone is not a wedge");
    let merged = std::fs::read(&report.merged_export).expect("merged export");
    assert_eq!(
        merged, clean,
        "the supervised kill-storm must merge byte-identical to one process"
    );
    let manifest = std::fs::read_to_string(&report.manifest).expect("manifest");
    assert!(manifest.contains("jobs 12/12"), "{manifest}");
    assert!(manifest.contains("missing-shards -"), "{manifest}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn silent_heartbeat_with_growing_journal_is_not_wedged() {
    let dir = temp_dir("silent");
    let mut options = SupervisorOptions::in_dir(&dir, 1);
    options.poll_interval = Duration::from_millis(15);
    // The whole campaign (12 jobs × 150 ms) outlives the stall timeout,
    // and the heartbeat never beats past campaign start — only the
    // journal-growth fallback keeps the shard alive.
    options.stall_timeout = Duration::from_millis(800);
    let injector =
        ProcessInjector::none().with_first_launch_args(0, &["--stall-heartbeat-after", "0"]);
    let report = supervise(
        &child_command(&["--job-delay-ms", "150"]),
        &options,
        &injector,
    )
    .expect("a silent sidecar must not fail the campaign");
    assert_eq!(
        report.fates[0],
        ShardFate::Completed {
            poisoned: false,
            restarts: 0
        },
        "journal growth must count as liveness"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs the `campaign_supervisor` binary with `args` appended to the
/// plan flags, returning its exit code.
fn run_supervisor_binary(dir: &Path, args: &[&str]) -> i32 {
    let status = Command::new(env!("CARGO_BIN_EXE_campaign_supervisor"))
        .args(PLAN_FLAGS)
        .arg("--child")
        .arg(env!("CARGO_BIN_EXE_campaign_run"))
        .arg("--dir")
        .arg(dir)
        .args(args)
        .status()
        .expect("spawn campaign_supervisor");
    status.code().expect("supervisor exit code")
}

#[test]
fn budget_exhaustion_quarantines_one_shard_and_the_manifest_recovers_it() {
    let clean = clean_export_bytes("budget-clean");
    let dir = temp_dir("budget");
    // Shard 0 crashes on *every* launch after one record; with a budget
    // of 1 restart it burns launch + restart and is quarantined. Shard 1
    // is healthy and must be unaffected.
    let code = run_supervisor_binary(
        &dir,
        &[
            "--shards",
            "2",
            "--restart-budget",
            "1",
            "--restart-backoff-ms",
            "10",
            "--poll-ms",
            "10",
            "--crash-shard",
            "0@1",
        ],
    );
    assert_eq!(code, 5, "a degraded campaign must exit 5, not 0");

    let manifest = std::fs::read_to_string(dir.join("manifest.txt")).expect("manifest");
    assert!(
        manifest.contains("shard 0: quarantined restarts=1"),
        "{manifest}"
    );
    assert!(
        manifest.contains("shard 1: completed restarts=0"),
        "{manifest}"
    );
    assert!(manifest.contains("missing-shards 0"), "{manifest}");
    assert!(manifest.contains("missing-jobs 0,2,4,6,8,10"), "{manifest}");
    assert!(manifest.contains("jobs 6/12"), "{manifest}");

    // The partial export covers exactly shard 1's jobs.
    let partial = ShardExport::read(u32::MAX, &dir.join("merged.bin")).expect("partial export");
    let jobs: Vec<u32> = partial.export.outcomes.iter().map(|o| o.job).collect();
    assert_eq!(jobs, vec![1, 3, 5, 7, 9, 11]);

    // Manual recovery: re-run the quarantined shard alone (resuming its
    // journal, no injection this time) and merge it with the partial
    // export — the combination must equal the uninterrupted run.
    let status = Command::new(env!("CARGO_BIN_EXE_campaign_run"))
        .args(PLAN_FLAGS)
        .arg("--journal")
        .arg(dir.join("shard-0.journal"))
        .arg("--export")
        .arg(dir.join("shard-0.bin"))
        .args(["--shard", "0/2", "--resume"])
        .status()
        .expect("manual shard re-run");
    assert_eq!(status.code(), Some(0), "the manual re-run must succeed");
    let late = ShardExport::read(0, &dir.join("shard-0.bin")).expect("late shard export");
    let full = campaign::merge_shard_exports(&[partial, late])
        .expect("partial + re-run shard must merge cleanly");
    assert_eq!(
        full.to_bytes(),
        clean,
        "recovered campaign must equal the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervisor_binary_rejects_unknown_flags_with_a_usage_error() {
    let dir = temp_dir("usage");
    let code = run_supervisor_binary(&dir, &["--shards", "1", "--frobnicate", "9"]);
    assert_eq!(code, 2, "unknown flags are usage errors");
    std::fs::remove_dir_all(&dir).ok();
}
