//! The seeded fault-injection suite: every crash mode the campaign
//! claims to survive, injected deterministically and proven recoverable.
//!
//! The core invariant, checked at 1, 2 and max threads: a campaign
//! interrupted at any injection point and then resumed produces an export
//! **byte-identical** to an uninterrupted run. Injection points covered:
//!
//! 1. worker kill (panic at job start, retried to success)
//! 2. lane-model panic (detonates inside the batched kernel)
//! 3. torn journal write (half a record on disk)
//! 4. checksum flip (corrupted record on disk)
//! 5. abort between records (clean SIGKILL analogue) + double resume
//! 6. poison exhaustion (a job that never succeeds is quarantined)

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use campaign::runner::{run_campaign, CampaignOptions};
use campaign::spec::{CampaignPlan, PopulationSpec};
use campaign::{CampaignError, Export, FaultInjector, Injection, JobStatus, Shard};
use march_test::coverage::SweepBackend;
use march_test::parallel::max_threads;

/// A unique temp path per call, so parallel tests never collide.
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "campaign-{tag}-{}-{unique}.journal",
        std::process::id()
    ))
}

/// A small but non-trivial plan: 2 seeds × 2 algorithms × 2 orders on a
/// 16×16 array — 8 jobs of a few hundred sweep steps each.
fn small_plan() -> CampaignPlan {
    CampaignPlan::cross(
        16,
        16,
        &[1, 2],
        &["March C-".to_string(), "MATS+".to_string()],
        &[
            "word line after word line".to_string(),
            "pseudo-random".to_string(),
        ],
        &[false],
        SweepBackend::LaneBatched,
        PopulationSpec::Mixed { count: 120 },
    )
}

fn options(threads: usize) -> CampaignOptions {
    CampaignOptions {
        threads,
        max_attempts: 3,
        backoff: Duration::ZERO,
        ..CampaignOptions::default()
    }
}

/// An uninterrupted run's export bytes.
fn clean_export(plan: &CampaignPlan, threads: usize, tag: &str) -> Vec<u8> {
    let journal = temp_path(tag);
    let summary = run_campaign(
        plan,
        Shard::whole(),
        &journal,
        &options(threads),
        &FaultInjector::none(),
    )
    .expect("clean run");
    std::fs::remove_file(&journal).ok();
    summary.export.to_bytes()
}

/// Runs with `injections` armed until the run aborts (if it does), then
/// resumes without injections; returns the final export bytes.
fn interrupted_then_resumed(
    plan: &CampaignPlan,
    threads: usize,
    injections: Vec<Injection>,
    tag: &str,
) -> Vec<u8> {
    let journal = temp_path(tag);
    let injector = FaultInjector::new(injections);
    let first = run_campaign(plan, Shard::whole(), &journal, &options(threads), &injector);
    let summary = match first {
        // The injection aborted the run mid-flight: resume cold.
        Err(CampaignError::Injected { .. }) => {
            let mut resume = options(threads);
            resume.resume = true;
            run_campaign(
                plan,
                Shard::whole(),
                &journal,
                &resume,
                &FaultInjector::none(),
            )
            .expect("resumed run")
        }
        // The injection was absorbed in-flight (retries) and the run
        // completed anyway.
        Ok(summary) => summary,
        Err(other) => panic!("unexpected campaign error: {other}"),
    };
    std::fs::remove_file(&journal).ok();
    summary.export.to_bytes()
}

#[test]
fn worker_kill_is_retried_and_changes_nothing() {
    let plan = small_plan();
    for threads in [1, 2, max_threads()] {
        let clean = clean_export(&plan, threads, "kill-clean");
        let killed = interrupted_then_resumed(
            &plan,
            threads,
            vec![Injection::KillWorker {
                job: 3,
                attempts: 2,
            }],
            "kill",
        );
        assert_eq!(
            clean, killed,
            "worker kill must be invisible at {threads} threads"
        );
    }
}

#[test]
fn lane_model_panic_inside_the_kernel_is_survived() {
    let plan = small_plan();
    for threads in [1, 2, max_threads()] {
        let clean = clean_export(&plan, threads, "lane-clean");
        let detonated = interrupted_then_resumed(
            &plan,
            threads,
            vec![Injection::LaneModelPanic {
                job: 5,
                attempts: 1,
            }],
            "lane",
        );
        assert_eq!(
            clean, detonated,
            "a panicking lane model must cost one attempt, not the campaign, at {threads} threads"
        );
    }
}

#[test]
fn torn_journal_write_resumes_bit_identical() {
    let plan = small_plan();
    for threads in [1, 2, max_threads()] {
        let clean = clean_export(&plan, threads, "torn-clean");
        let torn = interrupted_then_resumed(
            &plan,
            threads,
            vec![Injection::TornJournalWrite { record: 4 }],
            "torn",
        );
        assert_eq!(
            clean, torn,
            "torn write must be truncated away at {threads} threads"
        );
    }
}

#[test]
fn flipped_checksum_byte_resumes_bit_identical() {
    let plan = small_plan();
    for threads in [1, 2, max_threads()] {
        let clean = clean_export(&plan, threads, "flip-clean");
        // Byte 58 sits inside the stored checksum itself.
        let flipped = interrupted_then_resumed(
            &plan,
            threads,
            vec![Injection::FlipJournalByte {
                record: 2,
                byte: 58,
            }],
            "flip",
        );
        assert_eq!(
            clean, flipped,
            "corrupt record must be discarded at {threads} threads"
        );
    }
}

#[test]
fn abort_and_double_resume_stay_bit_identical() {
    let plan = small_plan();
    for threads in [1, 2, max_threads()] {
        let clean = clean_export(&plan, threads, "abort-clean");
        // First run: aborts after 3 records (SIGKILL between jobs).
        let journal = temp_path("abort");
        let injector = FaultInjector::new(vec![Injection::AbortAfterRecords { count: 3 }]);
        let first = run_campaign(
            &plan,
            Shard::whole(),
            &journal,
            &options(threads),
            &injector,
        );
        assert!(
            matches!(first, Err(CampaignError::Injected { .. })),
            "abort must stop the run"
        );
        // Second run: resume, but abort again two records later — a
        // crash *during* the recovery run.
        let mut resume = options(threads);
        resume.resume = true;
        let again = FaultInjector::new(vec![Injection::AbortAfterRecords { count: 5 }]);
        let second = run_campaign(&plan, Shard::whole(), &journal, &resume, &again);
        assert!(
            matches!(second, Err(CampaignError::Injected { .. })),
            "the recovery run crashes too"
        );
        // Third run: double resume to completion.
        let summary = run_campaign(
            &plan,
            Shard::whole(),
            &journal,
            &resume,
            &FaultInjector::none(),
        )
        .expect("second resume completes");
        assert_eq!(
            clean,
            summary.export.to_bytes(),
            "double resume must converge at {threads} threads"
        );
        assert!(
            summary.skipped >= 3,
            "resume must skip journaled jobs, not redo them"
        );
        std::fs::remove_file(&journal).ok();
    }
}

#[test]
fn poison_exhaustion_quarantines_the_job_and_spares_the_rest() {
    let plan = small_plan();
    let clean = Export::from_bytes(&clean_export(&plan, 2, "poison-clean")).unwrap();
    let journal = temp_path("poison");
    // Job 6 dies on every attempt: 3 attempts, then quarantine.
    let injector = FaultInjector::new(vec![Injection::KillWorker {
        job: 6,
        attempts: u8::MAX,
    }]);
    let summary = run_campaign(&plan, Shard::whole(), &journal, &options(2), &injector)
        .expect("poison does not stop the campaign");
    assert_eq!(summary.poisoned, vec![6]);
    assert_eq!(summary.retries, 2, "attempts 2 and 3 are retries");
    let export = &summary.export;
    assert_eq!(export.outcomes.len(), plan.len());
    for outcome in &export.outcomes {
        if outcome.job == 6 {
            assert_eq!(outcome.status, JobStatus::Poisoned);
            assert_eq!(outcome.result.digest, 0);
        } else {
            assert_eq!(outcome.status, JobStatus::Completed);
            let clean_outcome = clean.outcomes[outcome.job as usize];
            assert_eq!(
                outcome.result, clean_outcome.result,
                "job {} must be untouched by job 6's poison",
                outcome.job
            );
        }
    }
    // Resuming the poisoned campaign does not resurrect the job.
    let mut resume = options(2);
    resume.resume = true;
    let resumed = run_campaign(
        &plan,
        Shard::whole(),
        &journal,
        &resume,
        &FaultInjector::none(),
    )
    .expect("resume of a poisoned campaign");
    assert_eq!(resumed.executed, 0, "nothing left to execute");
    assert_eq!(resumed.poisoned, vec![6]);
    assert_eq!(summary.export.to_bytes(), resumed.export.to_bytes());
    std::fs::remove_file(&journal).ok();
}

#[test]
fn sharded_campaign_merges_to_the_unsharded_export() {
    let plan = small_plan();
    let clean = clean_export(&plan, 2, "shard-clean");
    let mut parts = Vec::new();
    for index in 0..3 {
        let journal = temp_path(&format!("shard-{index}"));
        let summary = run_campaign(
            &plan,
            Shard::new(index, 3).unwrap(),
            &journal,
            &options(2),
            &FaultInjector::none(),
        )
        .expect("shard run");
        std::fs::remove_file(&journal).ok();
        parts.push(summary.export);
    }
    let merged = campaign::merge_exports(&parts).expect("shards merge");
    assert_eq!(clean, merged.to_bytes(), "3 shards must equal 1 campaign");
}

#[test]
fn resume_executes_strictly_fewer_jobs() {
    let plan = small_plan();
    let journal = temp_path("accounting");
    let injector = FaultInjector::new(vec![Injection::AbortAfterRecords { count: 4 }]);
    let first = run_campaign(&plan, Shard::whole(), &journal, &options(1), &injector);
    assert!(matches!(first, Err(CampaignError::Injected { .. })));
    let mut resume = options(1);
    resume.resume = true;
    let summary = run_campaign(
        &plan,
        Shard::whole(),
        &journal,
        &resume,
        &FaultInjector::none(),
    )
    .expect("resume");
    assert_eq!(summary.skipped, 4, "4 journaled jobs must be skipped");
    assert_eq!(
        summary.executed,
        plan.len() - 4,
        "resume must execute strictly the remainder"
    );
    std::fs::remove_file(&journal).ok();
}
