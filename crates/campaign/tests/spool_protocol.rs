//! Property tests for the spool's tmp+rename commit protocol.
//!
//! The protocol's two safety claims, each exercised exhaustively here:
//! a torn `.tmp` file — truncated at *any* prefix length — is never
//! picked up by a scan, and a reader racing a live writer never observes
//! a half-written spec: every scanned submission parses back to exactly
//! the bytes some writer committed.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use campaign::spec::{JobSpec, PopulationSpec};
use campaign::spool::{render_job_line, SpoolDir};
use march_test::coverage::SweepBackend;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "campaign-spool-{tag}-{}-{unique}",
        std::process::id()
    ))
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        rows: 16,
        cols: 16,
        seed,
        algorithm: "March C-".to_string(),
        order: "pseudo-random".to_string(),
        background: seed % 2 == 1,
        backend: SweepBackend::LaneBatched,
        population: PopulationSpec::Mixed {
            count: 32 + seed as usize,
        },
    }
}

#[test]
fn torn_tmp_prefixes_of_any_length_are_never_scanned() {
    let dir = temp_dir("torn");
    let spool = SpoolDir::open(&dir).expect("spool");
    let line = render_job_line(&spec(7));
    // One orphaned .tmp per possible prefix length, including empty and
    // full — a client can die after any number of written bytes.
    for keep in 0..=line.len() {
        spool
            .submit_torn(&format!("torn-{keep:03}"), &spec(7), keep)
            .expect("torn submit");
    }
    assert!(
        spool.scan().expect("scan").is_empty(),
        "no torn .tmp prefix may ever be offered as a submission"
    );
    // A committed submission alongside the wreckage is still found.
    spool.submit("alive", &spec(8)).expect("submit");
    let scanned = spool.scan().expect("scan");
    assert_eq!(scanned.len(), 1);
    assert_eq!(scanned[0].name, "alive");
    assert_eq!(scanned[0].spec, Ok(spec(8)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_reader_racing_live_writers_never_sees_a_half_written_spec() {
    let dir = temp_dir("race");
    let spool = SpoolDir::open(&dir).expect("spool");
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 50;
    let done = Arc::new(AtomicBool::new(false));

    // Writers publish distinct specs as fast as they can; each submit is
    // a full tmp-write + rename cycle the reader can race.
    let writers: Vec<_> = (0..WRITERS)
        .map(|writer| {
            let spool = spool.clone();
            std::thread::spawn(move || {
                for index in 0..PER_WRITER {
                    let seed = writer * PER_WRITER + index + 1;
                    spool
                        .submit(&format!("w{writer}-{index:03}"), &spec(seed))
                        .expect("submit");
                }
            })
        })
        .collect();

    // The reader scans continuously while the writers run. Every spec it
    // observes must be complete and valid — `Err` (a parse failure)
    // would mean a half-written file became visible.
    let reader = {
        let spool = spool.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut seen = BTreeSet::new();
            while !done.load(Ordering::SeqCst) {
                for submission in spool.scan().expect("scan") {
                    let spec = submission
                        .spec
                        .unwrap_or_else(|reason| panic!("torn read observed: {reason}"));
                    seen.insert(spec.seed);
                }
            }
            seen
        })
    };

    for writer in writers {
        writer.join().expect("writer");
    }
    done.store(true, Ordering::SeqCst);
    let seen = reader.join().expect("reader");
    // Everything the reader did observe was one of the published seeds.
    assert!(seen
        .iter()
        .all(|seed| (1..=WRITERS * PER_WRITER).contains(seed)));
    // And a final scan (no race left) sees the full set, all parseable.
    let mut final_seeds = BTreeSet::new();
    for submission in spool.scan().expect("scan") {
        final_seeds.insert(submission.spec.expect("committed spec").seed);
    }
    assert_eq!(final_seeds.len() as u64, WRITERS * PER_WRITER);
    std::fs::remove_dir_all(&dir).ok();
}
