//! Cross-version journal compatibility, pinned by a **committed byte
//! fixture**: `tests/fixtures/v1_campaign.journal` was written by the
//! v1 (static) wire code and checked into the repo. Every future build
//! must keep resuming it — the fixture is the backstop against an
//! accidental wire-format change that same-version round-trip tests
//! cannot see. Regenerate (only after a *deliberate*, version-bumped
//! format change) with:
//!
//! ```text
//! cargo test -p campaign --test journal_compat -- --ignored regenerate
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use campaign::journal::{JobResult, Journal, JournalRecord};
use campaign::{CampaignError, FaultInjector};

/// The fixture's plan parameters, fixed forever: 3 jobs, an arbitrary
/// but pinned digest.
const FIXTURE_JOBS: u32 = 3;
const FIXTURE_DIGEST: u64 = 0x5EED_CA3D_BEEF_F00D;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1_campaign.journal")
}

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "campaign-compat-{tag}-{}-{unique}",
        std::process::id()
    ))
}

/// The fixture's record sequence: one of every v1 record kind, including
/// a fail-then-complete retry arc and a quarantine.
fn fixture_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Completed {
            job: 0,
            attempt: 1,
            result: JobResult {
                detected: 96,
                total: 128,
                mismatches: 0,
                digest: 0x0123_4567_89AB_CDEF,
            },
        },
        JournalRecord::Failed {
            job: 1,
            attempt: 1,
            message: "worker panicked: lane model".to_string(),
        },
        JournalRecord::Completed {
            job: 1,
            attempt: 2,
            result: JobResult {
                detected: 128,
                total: 128,
                mismatches: 2,
                digest: 0xFEDC_BA98_7654_3210,
            },
        },
        JournalRecord::Poisoned {
            job: 2,
            attempt: 3,
            message: "poison: persistent failure".to_string(),
        },
    ]
}

/// Writes the fixture's journal (header + records) at `path` using the
/// current wire code.
fn write_fixture(path: &Path) {
    let mut journal = Journal::create(path, FIXTURE_JOBS, FIXTURE_DIGEST).expect("create");
    for record in fixture_records() {
        journal
            .append(&record, &FaultInjector::none())
            .expect("append");
    }
}

/// Copies the committed fixture to a temp path (resume opens read-write
/// and takes the journal lock, so tests never open the fixture itself).
fn fixture_copy(tag: &str) -> PathBuf {
    let path = temp_path(tag);
    std::fs::copy(fixture_path(), &path).expect("copy fixture");
    path
}

#[test]
fn committed_v1_fixture_still_resumes() {
    let path = fixture_copy("resume");
    let (_journal, replay) =
        Journal::open_resume(&path, FIXTURE_JOBS, FIXTURE_DIGEST).expect("resume v1 fixture");
    assert_eq!(replay.records, 4);
    assert_eq!(replay.truncated_bytes, 0, "the fixture is a clean journal");
    assert_eq!(replay.completed.len(), 2);
    assert_eq!(replay.completed[&0].detected, 96);
    assert_eq!(replay.completed[&1].mismatches, 2);
    assert_eq!(
        replay.poisoned.get(&2).map(String::as_str),
        Some("poison: persistent failure")
    );
    assert!(replay.failed_attempts.is_empty(), "job 1's retry completed");
    assert!(
        replay.dynamic.is_empty(),
        "a v1 journal has no dynamic jobs"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_wire_encoding_has_not_drifted_from_the_fixture() {
    // The current encoder, run over the fixture's inputs, must reproduce
    // the committed bytes exactly. If this fails, the v1 wire format
    // changed — that requires a version bump and a migration story, not
    // a fixture update.
    let path = temp_path("drift");
    write_fixture(&path);
    let fresh = std::fs::read(&path).expect("read fresh");
    let committed = std::fs::read(fixture_path()).expect("read fixture");
    assert_eq!(
        fresh, committed,
        "today's v1 encoder no longer reproduces the committed journal bytes"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn future_versions_fail_naming_both_supported_versions() {
    // A journal from a future build (version 9) must be refused with an
    // error that names the versions this build *can* read — both of
    // them — so an operator knows which tool generation to reach for.
    let path = fixture_copy("future");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write");
    match Journal::open_resume(&path, FIXTURE_JOBS, FIXTURE_DIGEST) {
        Err(CampaignError::Corrupt { reason, .. }) => {
            assert!(
                reason.contains("unsupported journal version 9"),
                "must name the offending version, got: {reason}"
            );
            assert!(
                reason.contains("version 1 static"),
                "must name the static version it reads, got: {reason}"
            );
            assert!(
                reason.contains("version 2 dynamic"),
                "must name the dynamic version it reads, got: {reason}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // The same refusal (same wording) guards the dynamic resume path.
    match Journal::open_resume_dynamic(&path) {
        Err(CampaignError::Corrupt { reason, .. }) => {
            assert!(
                reason.contains("unsupported journal version 9"),
                "got: {reason}"
            );
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Maintainer tool, not a test: rewrites the committed fixture with the
/// current encoder. Run only after a deliberate format change.
#[test]
#[ignore = "rewrites the committed fixture; run by hand after a deliberate format change"]
fn regenerate_fixture() {
    std::fs::create_dir_all(fixture_path().parent().expect("parent")).expect("mkdir");
    write_fixture(&fixture_path());
}
