//! Journal corruption recovery, tested at the file level: mangle the
//! bytes on disk the way real crashes and bit rot do, then prove that
//! resume recovers exactly the surviving prefix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use campaign::journal::{JobResult, Journal, JournalRecord, HEADER_LEN, RECORD_LEN};
use campaign::{CampaignError, FaultInjector};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "campaign-journal-{tag}-{}-{unique}.bin",
        std::process::id()
    ))
}

fn result(seed: u64) -> JobResult {
    JobResult {
        detected: seed as u32,
        total: seed as u32 + 100,
        mismatches: seed * 11,
        digest: seed.wrapping_mul(0x517C_C1B7_2722_0A95),
    }
}

/// Writes a journal with `jobs` completed records and returns its path.
fn journal_with(tag: &str, jobs: u32, plan_digest: u64) -> PathBuf {
    let path = temp_path(tag);
    let mut journal = Journal::create(&path, jobs, plan_digest).expect("create");
    for job in 0..jobs {
        journal
            .append(
                &JournalRecord::Completed {
                    job,
                    attempt: 1,
                    result: result(u64::from(job)),
                },
                &FaultInjector::none(),
            )
            .expect("append");
    }
    path
}

#[test]
fn truncated_tail_record_is_dropped_and_the_prefix_survives() {
    let path = journal_with("truncate", 5, 0xABC);
    // Chop the last record mid-way: a crash during write(2).
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - RECORD_LEN / 2 - 8]).unwrap();
    let (journal, replay) = Journal::open_resume(&path, 5, 0xABC).expect("resume");
    assert_eq!(replay.records, 4, "four whole records survive");
    assert_eq!(replay.completed.len(), 4);
    assert!(!replay.completed.contains_key(&4), "the torn job is lost");
    assert!(replay.truncated_bytes > 0);
    assert_eq!(journal.records_written(), 4);
    // The file itself was truncated to a clean record boundary.
    let len = std::fs::metadata(&path).unwrap().len();
    assert_eq!(len as usize, HEADER_LEN + 4 * RECORD_LEN);
    std::fs::remove_file(&path).ok();
}

#[test]
fn bit_flipped_checksum_invalidates_only_the_corrupt_suffix() {
    let path = journal_with("bitflip", 6, 0xABC);
    // Flip one bit inside record 3's checksum field.
    let mut bytes = std::fs::read(&path).unwrap();
    let at = HEADER_LEN + 3 * RECORD_LEN + (RECORD_LEN - 2);
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let (_, replay) = Journal::open_resume(&path, 6, 0xABC).expect("resume");
    assert_eq!(
        replay.completed.len(),
        3,
        "records 0..3 survive; 3.. are discarded with the corruption"
    );
    assert_eq!(replay.truncated_bytes, 3 * RECORD_LEN as u64);
    std::fs::remove_file(&path).ok();
}

#[test]
fn identical_duplicate_records_replay_once() {
    let path = temp_path("dup");
    let mut journal = Journal::create(&path, 2, 0xD0).expect("create");
    let record = JournalRecord::Completed {
        job: 0,
        attempt: 1,
        result: result(9),
    };
    // The same completed record journaled twice — a job re-dispatched
    // right before a crash, then finished again after a resume.
    journal.append(&record, &FaultInjector::none()).unwrap();
    journal.append(&record, &FaultInjector::none()).unwrap();
    drop(journal); // release the advisory lock, as the crashed process would
    let (_, replay) = Journal::open_resume(&path, 2, 0xD0).expect("resume");
    assert_eq!(replay.records, 2);
    assert_eq!(replay.completed.len(), 1);
    assert_eq!(replay.completed[&0], result(9));
    std::fs::remove_file(&path).ok();
}

#[test]
fn conflicting_duplicate_records_fail_the_resume() {
    let path = temp_path("conflict");
    let mut journal = Journal::create(&path, 2, 0xD0).expect("create");
    journal
        .append(
            &JournalRecord::Completed {
                job: 0,
                attempt: 1,
                result: result(9),
            },
            &FaultInjector::none(),
        )
        .unwrap();
    journal
        .append(
            &JournalRecord::Completed {
                job: 0,
                attempt: 2,
                result: result(10), // different result: the journal lies
            },
            &FaultInjector::none(),
        )
        .unwrap();
    drop(journal); // release the advisory lock, as the crashed process would
    match Journal::open_resume(&path, 2, 0xD0) {
        Err(CampaignError::Corrupt { reason, .. }) => {
            assert!(reason.contains("two completed records"));
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn failed_records_accumulate_attempts_until_a_completion() {
    let path = temp_path("attempts");
    let mut journal = Journal::create(&path, 3, 0xE0).expect("create");
    let none = FaultInjector::none();
    for (job, attempt, message) in [(0, 1, "boom"), (0, 2, "boom again"), (1, 1, "once")] {
        journal
            .append(
                &JournalRecord::Failed {
                    job,
                    attempt,
                    message: message.to_string(),
                },
                &none,
            )
            .unwrap();
    }
    journal
        .append(
            &JournalRecord::Completed {
                job: 1,
                attempt: 2,
                result: result(7),
            },
            &none,
        )
        .unwrap();
    drop(journal); // release the advisory lock, as the crashed process would
    let (_, replay) = Journal::open_resume(&path, 3, 0xE0).expect("resume");
    assert_eq!(replay.failed_attempts[&0], (2, "boom again".to_string()));
    assert!(
        !replay.failed_attempts.contains_key(&1),
        "completion clears the failure tally"
    );
    assert_eq!(replay.completed[&1], result(7));
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_journal_from_a_different_plan() {
    let path = journal_with("planmix", 4, 0x1111);
    match Journal::open_resume(&path, 4, 0x2222) {
        Err(CampaignError::PlanMismatch { expected, found }) => {
            assert_eq!(expected, 0x2222);
            assert_eq!(found, 0x1111);
        }
        other => panic!("expected PlanMismatch, got {other:?}"),
    }
    // A different job count is a plan mismatch too.
    assert!(Journal::open_resume(&path, 5, 0x1111).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn mangled_headers_are_rejected_not_misread() {
    let path = journal_with("header", 2, 0xF0);
    let clean = std::fs::read(&path).unwrap();
    // Bad magic.
    let mut bad_magic = clean.clone();
    bad_magic[0] ^= 0xFF;
    std::fs::write(&path, &bad_magic).unwrap();
    assert!(matches!(
        Journal::open_resume(&path, 2, 0xF0),
        Err(CampaignError::Corrupt { .. })
    ));
    // Unsupported version.
    let mut bad_version = clean.clone();
    bad_version[8] = 0x7F;
    std::fs::write(&path, &bad_version).unwrap();
    assert!(matches!(
        Journal::open_resume(&path, 2, 0xF0),
        Err(CampaignError::Corrupt { .. })
    ));
    // Header shorter than HEADER_LEN.
    std::fs::write(&path, &clean[..HEADER_LEN - 7]).unwrap();
    assert!(matches!(
        Journal::open_resume(&path, 2, 0xF0),
        Err(CampaignError::Corrupt { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn zeroed_job_count_header_is_rejected_even_when_the_digest_matches() {
    // A zeroed job-count field (a crash mid-header-write, or a file
    // zero-filled by a failing disk) must not resume — even if the caller
    // also asks for zero jobs and the digest happens to line up, because
    // `create` can never have written such a header.
    let path = journal_with("zero-jobs", 2, 0xF0);
    let mut zeroed = std::fs::read(&path).unwrap();
    zeroed[16..20].fill(0);
    std::fs::write(&path, &zeroed).unwrap();
    assert!(matches!(
        Journal::open_resume(&path, 2, 0xF0),
        Err(CampaignError::PlanMismatch { .. })
    ));
    // The pathological caller-side echo: asking to resume 0 jobs against
    // the zeroed header still refuses.
    assert!(matches!(
        Journal::open_resume(&path, 0, 0xF0),
        Err(CampaignError::PlanMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}
