//! Experiment E5 (Section 5): per-source power breakdown in both modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bench::{bench_config, power_breakdowns};
use march_test::library;

fn breakdown_benches(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("power_breakdown");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for test in [library::mats_plus(), library::march_c_minus()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(test.name()),
            &test,
            |b, test| {
                b.iter(|| {
                    let (functional, low_power) =
                        power_breakdowns(&config, test).expect("runs succeed");
                    assert!(
                        functional.breakdown.precharge_fraction()
                            > low_power.breakdown.precharge_fraction()
                    );
                    (functional, low_power)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, breakdown_benches);
criterion_main!(benches);
