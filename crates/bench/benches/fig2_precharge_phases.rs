//! Experiment E2 (Figure 2): the pre-charge phase diagram and single-cycle
//! execution in both modes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::{bench_config, fig2_phases};
use sram_model::address::{Address, ColIndex, RowIndex};
use sram_model::controller::MemoryController;
use sram_model::operation::{CycleCommand, MemOperation};

fn fig2_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_precharge_phases");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("phase_diagram", |b| {
        b.iter(|| {
            let phases = fig2_phases();
            assert_eq!(phases.len(), 2);
            phases
        })
    });

    group.bench_function("functional_cycle", |b| {
        let config = bench_config();
        let mut controller = MemoryController::new(config);
        let addr = Address::from_row_col(RowIndex(0), ColIndex(0), controller.organization());
        b.iter(|| {
            controller
                .execute(CycleCommand::functional(addr, MemOperation::Read))
                .expect("cycle executes")
        })
    });

    group.bench_function("low_power_cycle", |b| {
        let config = bench_config();
        let mut controller = MemoryController::new(config);
        let addr = Address::from_row_col(RowIndex(0), ColIndex(0), controller.organization());
        b.iter(|| {
            controller
                .execute(CycleCommand::low_power(
                    addr,
                    MemOperation::Read,
                    vec![0, 1],
                ))
                .expect("cycle executes")
        })
    });

    group.finish();
}

criterion_group!(benches, fig2_benches);
criterion_main!(benches);
