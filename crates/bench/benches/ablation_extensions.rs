//! Ablations A2/A3 and the word-oriented extension A4.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::{ablation_alpha, ablation_read_write_ratio, word_oriented_sweep};
use sram_model::config::{ArrayOrganization, TechnologyParams};

fn extension_benches(c: &mut Criterion) {
    let technology = TechnologyParams::default_013um();
    let organization = ArrayOrganization::paper_512x512();
    let mut group = c.benchmark_group("ablation_extensions");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("alpha_sensitivity", |b| {
        b.iter(|| {
            let sweep = ablation_alpha(&technology, &organization);
            assert_eq!(sweep.len(), 9);
            sweep
        })
    });

    group.bench_function("read_write_ratio", |b| {
        b.iter(|| {
            let sweep = ablation_read_write_ratio(&technology, &organization);
            assert_eq!(sweep.len(), 6);
            sweep
        })
    });

    group.bench_function("word_oriented_sweep", |b| {
        b.iter(|| {
            let sweep = word_oriented_sweep(&technology, &organization);
            assert!(sweep.first().unwrap().1 > sweep.last().unwrap().1);
            sweep
        })
    });

    group.finish();
}

criterion_group!(benches, extension_benches);
criterion_main!(benches);
