//! Experiment E3 (Figure 6): floating bit-line discharge, via both the
//! behavioural per-cycle model and the netlist transient solver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::fig6_discharge;
use sram_model::config::TechnologyParams;
use transient::prelude::*;

fn fig6_benches(c: &mut Criterion) {
    let technology = TechnologyParams::default_013um();
    let mut group = c.benchmark_group("fig6_bitline_discharge");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("behavioural_waveform", |b| {
        b.iter(|| {
            let data = fig6_discharge(&technology);
            assert!(data.cycles_to_ground > 5.0);
            data
        })
    });

    group.bench_function("netlist_transient", |b| {
        b.iter(|| {
            let mut netlist = Netlist::new();
            let gnd = netlist.add_source("GND", Volts::ZERO);
            let bl = netlist.add_node("BL", technology.bitline_capacitance, technology.vdd);
            let wl = netlist.add_switch("WL", true);
            let r_cell = technology.vdd.value() / technology.cell_read_current.value();
            netlist.add_gated_resistor(bl, gnd, Ohms(r_cell), wl);
            let mut solver = TransientSolver::new(netlist);
            let result = solver.run(SolverConfig::for_duration(Seconds(
                technology.clock_period.value() * 30.0,
            )));
            assert!(result.final_voltage(bl) < technology.vdd);
            result
        })
    });

    group.bench_function("charge_sharing_swap_check", |b| {
        b.iter(|| {
            transient::charge_share::node_flips(
                technology.cell_node_capacitance,
                technology.vdd,
                technology.bitline_capacitance,
                Volts::ZERO,
                technology.logic_threshold,
            )
        })
    });

    group.finish();
}

criterion_group!(benches, fig6_benches);
criterion_main!(benches);
