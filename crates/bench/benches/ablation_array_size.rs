//! Ablation A1: PRR as a function of the array organisation, analytic sweep
//! plus one cycle-accurate point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bench::ablation_array_size;
use lp_precharge::prelude::*;
use march_test::library;
use sram_model::config::{ArrayOrganization, SramConfig, TechnologyParams};

fn ablation_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_array_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("analytic_sweep", |b| {
        let technology = TechnologyParams::default_013um();
        b.iter(|| {
            let sweep = ablation_array_size(&technology);
            assert_eq!(sweep.len(), 6);
            sweep
        })
    });

    for cols in [32u32, 64, 128] {
        let config = SramConfig::builder()
            .organization(ArrayOrganization::new(32, cols).expect("valid organization"))
            .build()
            .expect("valid configuration");
        group.bench_with_input(
            BenchmarkId::new("simulated_march_c_minus", cols),
            &config,
            |b, config| {
                let session = TestSession::new(*config);
                b.iter(|| {
                    let record = session
                        .compare(&library::march_c_minus())
                        .expect("comparison succeeds");
                    assert!(record.prr > 0.0);
                    record
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
