//! Experiment E7 (Section 4): control-logic overhead and timing impact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::{overhead, paper_config};
use lp_precharge::control_logic::{ControlInputs, PrechargeControlElement};
use lp_precharge::timing::TimingImpact;
use sram_model::config::TechnologyParams;

fn overhead_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead_timing");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("control_element_truth_table", |b| {
        let element = PrechargeControlElement::new();
        b.iter(|| {
            let mut enabled = 0u32;
            for lp_test in [false, true] {
                for pr in [false, true] {
                    for cs_prev in [false, true] {
                        for cs_own in [false, true] {
                            if element.precharge_enabled(ControlInputs {
                                lp_test,
                                pr,
                                cs_prev,
                                cs_own,
                            }) {
                                enabled += 1;
                            }
                        }
                    }
                }
            }
            enabled
        })
    });

    group.bench_function("overhead_report", |b| {
        let config = paper_config();
        b.iter(|| {
            let data = overhead(&config);
            assert_eq!(data.transistors_per_column, 10);
            data
        })
    });

    group.bench_function("timing_impact", |b| {
        let technology = TechnologyParams::default_013um();
        b.iter(|| {
            let impact = TimingImpact::with_defaults(&technology);
            assert!(impact.is_negligible());
            impact
        })
    });

    group.finish();
}

criterion_group!(benches, overhead_benches);
criterion_main!(benches);
