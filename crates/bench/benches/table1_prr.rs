//! Experiment E1 (Table 1): PRR measurement for every March algorithm.
//!
//! The bench times one functional-vs-low-power comparison per algorithm on
//! the reduced 64×128 array (the 512×512 reproduction lives in the `repro`
//! binary), so `cargo bench` exercises exactly the code path behind the
//! headline table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bench::bench_config;
use lp_precharge::prelude::*;
use march_test::library;

fn table1_prr(c: &mut Criterion) {
    let config = bench_config();
    let session = TestSession::new(config);
    let mut group = c.benchmark_group("table1_prr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for test in library::table1_algorithms() {
        group.bench_with_input(
            BenchmarkId::from_parameter(test.name()),
            &test,
            |b, test| {
                b.iter(|| {
                    let record = session.compare(test).expect("comparison succeeds");
                    assert!(record.prr > 0.0);
                    record
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table1_prr);
criterion_main!(benches);
