//! Experiment E4 (Figure 7): the row-transition hazard and the restore fix.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::fig7_row_transition;
use sram_model::config::{ArrayOrganization, SramConfig};

fn fig7_benches(c: &mut Criterion) {
    let config = SramConfig::builder()
        .organization(ArrayOrganization::new(16, 64).expect("valid organization"))
        .build()
        .expect("valid configuration");
    let mut group = c.benchmark_group("fig7_row_transition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("with_and_without_restore", |b| {
        b.iter(|| {
            let data = fig7_row_transition(&config).expect("scenario runs");
            assert!(data.swaps_without_restore > 0);
            assert_eq!(data.swaps_with_restore, 0);
            data
        })
    });

    group.finish();
}

criterion_group!(benches, fig7_benches);
criterion_main!(benches);
