//! Throughput of the fault-simulation kernel: seed-style baseline vs. the
//! shared-walk / bit-packed / early-exit / parallel sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::throughput::baseline_evaluate_coverage;
use march_test::address_order::WordLineAfterWordLine;
use march_test::coverage::{evaluate_coverage_on_walk, SweepBackend, SweepOptions};
use march_test::executor::MarchWalk;
use march_test::fault_sim::DetectionMode;
use march_test::faults::standard_fault_list;
use march_test::library;
use sram_model::config::ArrayOrganization;

fn fault_sim_benches(c: &mut Criterion) {
    let organization = ArrayOrganization::new(32, 32).expect("valid organization");
    let faults = standard_fault_list(&organization);
    let mut group = c.benchmark_group("fault_sim_throughput");
    group.sample_size(10);

    for test in [library::mats_plus(), library::march_g()] {
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        group.bench_with_input(
            BenchmarkId::new("baseline_seed_style", test.name()),
            &test,
            |b, test| {
                b.iter(|| {
                    baseline_evaluate_coverage(test, &WordLineAfterWordLine, &organization, &faults)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kernel_serial_early_exit", test.name()),
            &walk,
            |b, walk| {
                b.iter(|| {
                    evaluate_coverage_on_walk(
                        walk,
                        &faults,
                        SweepOptions {
                            background: false,
                            mode: DetectionMode::FirstMismatch,
                            parallel: false,
                            backend: SweepBackend::PerFault,
                        },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lane_batched_serial", test.name()),
            &walk,
            |b, walk| {
                b.iter(|| {
                    evaluate_coverage_on_walk(
                        walk,
                        &faults,
                        SweepOptions {
                            background: false,
                            mode: DetectionMode::FirstMismatch,
                            parallel: false,
                            backend: SweepBackend::LaneBatched,
                        },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lane_batched_parallel", test.name()),
            &walk,
            |b, walk| b.iter(|| evaluate_coverage_on_walk(walk, &faults, SweepOptions::fast())),
        );
    }
    group.finish();
}

criterion_group!(benches, fault_sim_benches);
criterion_main!(benches);
