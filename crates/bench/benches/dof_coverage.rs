//! Experiment E6: fault-simulation cost of the degree-of-freedom coverage
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bench::dof_summary;
use march_test::address_order::WordLineAfterWordLine;
use march_test::coverage::evaluate_coverage;
use march_test::faults::standard_fault_list;
use march_test::library;
use sram_model::config::ArrayOrganization;

fn dof_benches(c: &mut Criterion) {
    let organization = ArrayOrganization::new(8, 8).expect("valid organization");
    let mut group = c.benchmark_group("dof_coverage");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("order_independence_summary", |b| {
        b.iter(|| {
            let summary = dof_summary(&organization);
            assert!(summary.iter().all(|(_, preserved, _)| *preserved));
            summary
        })
    });

    let faults = standard_fault_list(&organization);
    for test in [library::mats_plus(), library::march_ss()] {
        group.bench_with_input(
            BenchmarkId::new("coverage", test.name()),
            &test,
            |b, test| {
                b.iter(|| evaluate_coverage(test, &WordLineAfterWordLine, &organization, &faults))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, dof_benches);
criterion_main!(benches);
