//! Tiny argument helpers shared by the benchmark binaries.

/// The value following `flag` in `args`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a comma-separated organization list like `64x64,128x128`.
///
/// # Panics
///
/// Panics (with a message) on malformed entries — the binaries' intended
/// arg handling.
pub fn parse_size_list(spec: &str) -> Vec<(u32, u32)> {
    spec.split(',')
        .map(|entry| {
            let (rows, cols) = entry
                .trim()
                .split_once('x')
                .unwrap_or_else(|| panic!("organization '{entry}' must look like 64x64"));
            (
                rows.parse().expect("rows must be an integer"),
                cols.parse().expect("cols must be an integer"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_finds_the_following_token() {
        let args: Vec<String> = ["--passes", "3", "--out", "x.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--passes").as_deref(), Some("3"));
        assert_eq!(arg_value(&args, "--out").as_deref(), Some("x.json"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }

    #[test]
    fn parses_size_lists() {
        assert_eq!(
            parse_size_list("64x64, 128x256"),
            vec![(64, 64), (128, 256)]
        );
    }

    #[test]
    #[should_panic(expected = "must look like 64x64")]
    fn rejects_malformed_sizes() {
        let _ = parse_size_list("64-64");
    }
}
