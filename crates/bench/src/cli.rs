//! Tiny argument helpers shared by the benchmark binaries.
//!
//! Flag parsing returns typed [`CliError`]s instead of panicking, so the
//! binaries can print the offending flag and exit with a distinct usage
//! code (`2`) rather than dumping a panic backtrace at the user. I/O
//! failures exit with code `3`; `bench_check` keeps `1` for the
//! regression gate itself.

/// A malformed command-line value: which flag, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// The flag whose value is malformed, e.g. `"--passes"`.
    pub flag: String,
    /// Human-readable reason.
    pub reason: String,
}

impl CliError {
    /// Builds an error for `flag`.
    pub fn new(flag: &str, reason: impl Into<String>) -> Self {
        Self {
            flag: flag.to_string(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.flag, self.reason)
    }
}

impl std::error::Error for CliError {}

/// The value following `flag` in `args`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the value of `flag` as `T`, or returns `default` when the flag
/// is absent. A present-but-unparsable value is a [`CliError`].
pub fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match arg_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| CliError::new(flag, format!("cannot parse \"{raw}\""))),
    }
}

/// Parses a comma-separated organization list like `64x64,128x128`,
/// attributing failures to `flag`.
pub fn parse_size_list(spec: &str, flag: &str) -> Result<Vec<(u32, u32)>, CliError> {
    let sizes: Vec<(u32, u32)> = spec
        .split(',')
        .map(|entry| {
            let entry = entry.trim();
            let (rows, cols) = entry
                .split_once('x')
                .ok_or_else(|| CliError::new(flag, format!("'{entry}' must look like 64x64")))?;
            let rows = rows.parse().map_err(|_| {
                CliError::new(flag, format!("rows of '{entry}' must be an integer"))
            })?;
            let cols = cols.parse().map_err(|_| {
                CliError::new(flag, format!("cols of '{entry}' must be an integer"))
            })?;
            Ok((rows, cols))
        })
        .collect::<Result<_, CliError>>()?;
    if sizes.is_empty() {
        return Err(CliError::new(flag, "empty organization list"));
    }
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_finds_the_following_token() {
        let args = args(&["--passes", "3", "--out", "x.json"]);
        assert_eq!(arg_value(&args, "--passes").as_deref(), Some("3"));
        assert_eq!(arg_value(&args, "--out").as_deref(), Some("x.json"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }

    #[test]
    fn parse_flag_defaults_parses_and_rejects() {
        let args = args(&["--passes", "3", "--threads", "many"]);
        assert_eq!(parse_flag(&args, "--passes", 1usize), Ok(3));
        assert_eq!(parse_flag(&args, "--absent", 7u32), Ok(7));
        let error = parse_flag(&args, "--threads", 1usize).unwrap_err();
        assert_eq!(error.flag, "--threads");
        assert!(error.to_string().contains("many"));
    }

    #[test]
    fn parses_size_lists() {
        assert_eq!(
            parse_size_list("64x64, 128x256", "--sizes"),
            Ok(vec![(64, 64), (128, 256)])
        );
    }

    #[test]
    fn rejects_each_malformed_size_shape_with_the_flag_named() {
        for (spec, fragment) in [
            ("64-64", "must look like 64x64"),
            ("ax64", "rows"),
            ("64xb", "cols"),
            ("", "must look like 64x64"),
        ] {
            let error = parse_size_list(spec, "--organization").unwrap_err();
            assert_eq!(error.flag, "--organization", "spec {spec:?}");
            assert!(
                error.reason.contains(fragment),
                "spec {spec:?}: {}",
                error.reason
            );
        }
    }
}
