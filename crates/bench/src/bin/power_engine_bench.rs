//! Measures power-engine throughput across array organizations and writes
//! `BENCH_power_engine.json`.
//!
//! ```text
//! cargo run --release -p bench --bin power_engine_bench                 # 64x64 .. 1024x1024
//! cargo run --release -p bench --bin power_engine_bench -- --sizes 64x64,512x512
//! cargo run --release -p bench --bin power_engine_bench -- --passes 2 --out custom.json
//! ```
//!
//! The workload is the paper's Table 1 reproduction: all five March
//! algorithms, both operating modes, cycle-accurate power metering. The
//! rebuilt engine (shared schedule plans, the row-replay kernel and the
//! parallel per-algorithm harness) is compared against a frozen replica
//! of the seed implementation up to 256×256 (`baseline_skipped` beyond —
//! see `bench::power_engine::BASELINE_CELL_CAP`); before any timing, the
//! row-replay kernel is asserted bit-identical to the full simulation at
//! every size, and to the seed replica wherever the replica still runs.
//! The default sweep is the ROADMAP's 64×64 → 1024×1024 scaling ladder.
//!
//! Exit codes: `0` on success, `2` for a malformed command line, `3` when
//! the output file cannot be written.

use std::process::ExitCode;

use bench::cli::{arg_value, parse_flag, parse_size_list, CliError};
use bench::power_engine::power_engine_throughput;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(error) => {
            eprintln!("power_engine_bench: {error}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let sizes = match arg_value(args, "--sizes") {
        Some(spec) => parse_size_list(&spec, "--sizes")?,
        None => vec![(64, 64), (128, 128), (256, 256), (512, 512), (1024, 1024)],
    };
    let passes: usize = parse_flag(args, "--passes", 1)?;
    let out = arg_value(args, "--out").unwrap_or_else(|| "BENCH_power_engine.json".to_string());

    println!(
        "# Power-engine throughput ({} organizations, {passes} pass(es) per variant)",
        sizes.len()
    );
    let result = power_engine_throughput(&sizes, passes);
    for size in &result.sizes {
        println!(
            "{}x{}: {} cycles per Table 1 pass",
            size.rows, size.cols, size.cycles_per_pass
        );
        match size.baseline {
            Some(baseline) => println!(
                "  baseline (seed-style schedule + serial):   {:>12.0} cycles/sec   (Table 1 in {:.2}s)",
                baseline.cycles_per_sec, baseline.table1_seconds
            ),
            None => println!(
                "  baseline (seed-style schedule + serial):   skipped above 256x256"
            ),
        }
        let speedup = size
            .speedup_table1()
            .map_or_else(String::new, |s| format!(", {s:.1}x"));
        println!(
            "  engine (plan + row replay + parallel):     {:>12.0} cycles/sec   (Table 1 in {:.2}s{speedup})",
            size.engine.cycles_per_sec, size.engine.table1_seconds,
        );
        println!(
            "  simulated (cycle-by-cycle, serial):        {:>12.0} cycles/sec",
            size.simulated.cycles_per_sec
        );
        println!(
            "  replay kernel (serial):                    {:>12.0} cycles/sec   ({:.1}x vs simulated)",
            size.replay_serial.cycles_per_sec,
            size.speedup_replay_vs_simulated()
        );
    }

    if let Err(error) = std::fs::write(&out, result.to_json()) {
        eprintln!("power_engine_bench: cannot write {out}: {error}");
        return Ok(ExitCode::from(3));
    }
    println!("wrote {out}");
    Ok(ExitCode::SUCCESS)
}
