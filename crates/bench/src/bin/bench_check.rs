//! Gates CI on benchmark regressions.
//!
//! ```text
//! cargo run --release -p bench --bin bench_check -- \
//!     --pair BENCH_fault_sim.json fresh/BENCH_fault_sim.json \
//!     --pair BENCH_power_engine.json fresh/BENCH_power_engine.json \
//!     --threshold 0.25 --absolute-threshold 0.5
//! ```
//!
//! Each `--pair` names a committed baseline JSON and a freshly measured
//! one. The process exits non-zero when any gated metric of any pair
//! regresses: machine-relative `speedup_*` metrics by more than
//! `--threshold` (default 25 %), absolute `*_per_sec` throughputs by
//! more than `--absolute-threshold` (default 50 % — CI runners and dev
//! machines differ in raw speed, so only collapses are failures there).
//! Every comparison is printed, so the CI log doubles as a throughput
//! report.
//!
//! Exit codes: `0` when every pair passes, `1` when a gated metric
//! regressed, `2` for a malformed command line, `3` when a benchmark
//! file cannot be read.

use bench::regression::{check_benchmarks, GateThresholds};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut thresholds = GateThresholds::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pair" => {
                let baseline = args.get(i + 1).cloned();
                let current = args.get(i + 2).cloned();
                match (baseline, current) {
                    (Some(baseline), Some(current)) => pairs.push((baseline, current)),
                    _ => die("--pair needs <baseline.json> <current.json>"),
                }
                i += 3;
            }
            "--threshold" => {
                thresholds.relative =
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            die("--threshold needs a fraction like 0.25");
                        });
                i += 2;
            }
            "--absolute-threshold" => {
                thresholds.absolute =
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            die("--absolute-threshold needs a fraction like 0.5");
                        });
                i += 2;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if pairs.is_empty() {
        die("at least one --pair <baseline.json> <current.json> is required");
    }

    let mut failed = false;
    for (baseline_path, current_path) in &pairs {
        let baseline = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| die_io(&format!("read {baseline_path}: {e}")));
        let current = std::fs::read_to_string(current_path)
            .unwrap_or_else(|e| die_io(&format!("read {current_path}: {e}")));
        let report = check_benchmarks(&baseline, &current, thresholds)
            .unwrap_or_else(|e| die(&format!("{baseline_path} vs {current_path}: {e}")));

        println!(
            "## {} ({baseline_path} vs {current_path}, speedup threshold {:.0}%, \
             absolute threshold {:.0}%)",
            report.benchmark,
            thresholds.relative * 100.0,
            thresholds.absolute * 100.0
        );
        for comparison in &report.comparisons {
            println!(
                "  {:<45} baseline {:>12.1}  current {:>12.1}  ({:+.1}%)",
                comparison.metric,
                comparison.baseline,
                comparison.current,
                (comparison.ratio() - 1.0) * 100.0
            );
        }
        if report.passed() {
            println!("  PASS");
        } else {
            failed = true;
            for failure in &report.failures {
                println!("  FAIL: {failure}");
            }
        }
    }

    if failed {
        eprintln!("benchmark regression gate failed");
        std::process::exit(1);
    }
    println!("benchmark regression gate passed");
}

fn die(message: &str) -> ! {
    eprintln!("bench_check: {message}");
    std::process::exit(2);
}

fn die_io(message: &str) -> ! {
    eprintln!("bench_check: {message}");
    std::process::exit(3);
}
