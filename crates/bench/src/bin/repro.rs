//! Regenerates every table and figure of the paper from the workspace
//! crates and prints them side by side with the published values.
//!
//! ```text
//! cargo run --release -p bench --bin repro            # everything
//! cargo run --release -p bench --bin repro -- --table1 --fig6
//! cargo run --release -p bench --bin repro -- --quick  # reduced array sizes
//! ```

use bench::*;
use lp_precharge::report::paper_table1_reference;
use march_test::library;
use power_model::report::format_table1;
use sram_model::config::{ArrayOrganization, SramConfig, TechnologyParams};
use sram_model::error::SramError;

struct Flags {
    table1: bool,
    fig2: bool,
    fig6: bool,
    fig7: bool,
    breakdown: bool,
    dof: bool,
    overhead: bool,
    ablations: bool,
    word_oriented: bool,
    quick: bool,
}

impl Flags {
    fn parse() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let has = |flag: &str| args.iter().any(|a| a == flag);
        let any_specific = args.iter().any(|a| a.starts_with("--") && a != "--quick");
        let all = !any_specific;
        Self {
            table1: all || has("--table1"),
            fig2: all || has("--fig2"),
            fig6: all || has("--fig6"),
            fig7: all || has("--fig7"),
            breakdown: all || has("--breakdown"),
            dof: all || has("--dof"),
            overhead: all || has("--overhead"),
            ablations: all || has("--ablations"),
            word_oriented: all || has("--word-oriented"),
            quick: has("--quick"),
        }
    }
}

fn main() -> Result<(), SramError> {
    let flags = Flags::parse();
    let technology = TechnologyParams::default_013um();
    let config = if flags.quick {
        SramConfig::builder()
            .organization(ArrayOrganization::new(128, 128)?)
            .build()?
    } else {
        paper_config()
    };

    println!("# Reproduction run");
    println!(
        "array {}x{}, {:.2} um, {:.1} V, {:.1} ns cycle{}",
        config.organization().rows(),
        config.organization().cols(),
        technology.feature_size_um,
        technology.vdd.value(),
        technology.clock_period.to_nanoseconds(),
        if flags.quick { " (quick mode)" } else { "" }
    );
    println!();

    if flags.table1 {
        println!("## Table 1 — PRR per March algorithm");
        let rows = table1(&config)?;
        println!("{}", format_table1(&rows));
        println!("paper reference:");
        for (name, prr) in paper_table1_reference() {
            println!("  {name:<10} {prr:.1} %");
        }
        println!();
    }

    if flags.fig2 {
        println!("## Figure 2 — pre-charge action within one clock cycle");
        println!(
            "{:<28} {:<34} {:<34} {:<20}",
            "phase", "selected column", "unselected (functional)", "uninvolved (LP test)"
        );
        for phase in fig2_phases() {
            println!(
                "{:<28} {:<34} {:<34} {:<20}",
                phase.phase,
                phase.selected_column,
                phase.unselected_functional,
                phase.unselected_low_power
            );
        }
        println!();
    }

    if flags.fig6 {
        println!("## Figure 6 — floating bit-line discharge");
        let data = fig6_discharge(&technology);
        println!("{}", data.waveform.to_ascii(48, 15));
        println!(
            "BL crosses the logic threshold after {:.1} cycles and reaches ground after {:.1} cycles",
            data.cycles_to_threshold, data.cycles_to_ground
        );
        println!(
            "BLB stays at {:.1} V (paper: discharge to logic '0' in nearly nine clock cycles)",
            data.blb_voltage.value()
        );
        println!();
        println!("CSV samples:");
        print!("{}", data.waveform.to_csv());
        println!();
    }

    if flags.fig7 {
        println!("## Figure 7 — row-transition faulty swap and its fix");
        // The hazard only needs a modest array to show up; keep it quick.
        let small = SramConfig::builder()
            .organization(ArrayOrganization::new(32, 64)?)
            .build()?;
        let data = fig7_row_transition(&small)?;
        println!(
            "without the one-cycle restore: {} faulty swaps, {} read mismatches",
            data.swaps_without_restore, data.mismatches_without_restore
        );
        println!(
            "with the restore (paper's fix): {} faulty swaps, {} read mismatches",
            data.swaps_with_restore, data.mismatches_with_restore
        );
        println!();
    }

    if flags.breakdown {
        println!("## Section 5 — per-source power breakdown (March C-)");
        let (functional, low_power) = power_breakdowns(&config, &library::march_c_minus())?;
        println!(
            "functional mode: {:.3} mW average over {} cycles",
            functional.report.average_power.to_milliwatts(),
            functional.report.cycles
        );
        println!("{}", functional.breakdown);
        println!();
        println!(
            "low-power test mode: {:.3} mW average over {} cycles",
            low_power.report.average_power.to_milliwatts(),
            low_power.report.cycles
        );
        println!("{}", low_power.breakdown);
        println!(
            "stressed cells per cycle (alpha): functional {:.1}, low-power {:.1}",
            functional.stress.stressed_cells_per_cycle(),
            low_power.stress.stressed_cells_per_cycle()
        );
        println!();
    }

    if flags.dof {
        println!("## Degree of freedom #1 — coverage independent of the address order");
        let organization = ArrayOrganization::new(8, 8)?;
        for (name, preserved, coverage) in dof_summary(&organization) {
            println!(
                "  {name:<10} guaranteed coverage preserved: {preserved}   coverage (static faults): {:.1} %",
                coverage * 100.0
            );
        }
        println!();
    }

    if flags.overhead {
        println!("## Section 4 — hardware overhead of the modified control logic");
        let data = overhead(&config);
        println!(
            "  {} transistors per column, {} total ({:.2} % of the cell array)",
            data.transistors_per_column,
            data.total_transistors,
            data.area_fraction * 100.0
        );
        println!(
            "  added pre-charge path delay {:.1} ps = {:.3} % of the clock period",
            data.added_delay_ps,
            data.delay_fraction * 100.0
        );
        println!();
    }

    if flags.ablations {
        println!("## Ablation A1 — PRR vs array organisation (March C-, analytic)");
        for (rows, cols, prr) in ablation_array_size(&technology) {
            println!("  {rows:>4} x {cols:<5} {:>5.1} %", prr * 100.0);
        }
        println!();
        println!("## Ablation A2 — residual-RES cells (alpha) vs savings");
        for (alpha, fraction) in ablation_alpha(&technology, config.organization()) {
            println!(
                "  alpha = {alpha:>2}: residual RES energy = {:.2} % of the gross savings",
                fraction * 100.0
            );
        }
        println!();
        println!("## Ablation A3 — PRR vs write/read energy ratio (March C-)");
        for (ratio, prr) in ablation_read_write_ratio(&technology, config.organization()) {
            println!("  Pw/Pr = {ratio:>3.1}: PRR = {:.1} %", prr * 100.0);
        }
        println!();
    }

    if flags.word_oriented {
        println!("## Extension — word-oriented memories (paper future work)");
        for (width, prr) in word_oriented_sweep(&technology, config.organization()) {
            println!("  {width:>2}-bit words: PRR = {:.1} %", prr * 100.0);
        }
        println!();
    }

    Ok(())
}
