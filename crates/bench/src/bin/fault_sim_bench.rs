//! Measures fault-simulation sweep throughput across array organizations
//! and writes `BENCH_fault_sim.json`.
//!
//! ```text
//! cargo run --release -p bench --bin fault_sim_bench                  # 64x64 .. 1024x1024
//! cargo run --release -p bench --bin fault_sim_bench -- --organization 64x64,128x128
//! cargo run --release -p bench --bin fault_sim_bench -- --rows 16 --cols 16
//! cargo run --release -p bench --bin fault_sim_bench -- --passes 5 --out custom.json
//! cargo run --release -p bench --bin fault_sim_bench -- --dense-size 512x512 --dense-faults 50000
//! cargo run --release -p bench --bin fault_sim_bench -- --no-dense
//! ```
//!
//! The workload is the acceptance sweep of the kernel work: the standard
//! fault list × the paper's Table 1 algorithms, measured per organization
//! for the per-fault kernel (serial + parallel) and the lane-batched
//! backend (≤64 faults per walk dispatch, serial + parallel), compared
//! against a frozen replica of the original per-fault-allocating serial
//! implementation up to 256×256 (`baseline_skipped` beyond — see
//! `bench::throughput::BASELINE_CELL_CAP`). The default sweep is the
//! ROADMAP's 64×64 → 1024×1024 scaling ladder, followed by the dense
//! section: a generated ≥100k-fault population vs. the standard list at
//! 1024×1024 and the address-aware packer vs. the greedy planner on an
//! overlap-heavy population (skip with `--no-dense`).

use bench::cli::{arg_value, parse_size_list};
use bench::throughput::FaultSimSweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--rows`/`--cols` select a single organization (the pre-sweep CLI);
    // `--organization` takes the comma list.
    let single = match (arg_value(&args, "--rows"), arg_value(&args, "--cols")) {
        (None, None) => None,
        (rows, cols) => Some((
            rows.map_or(64, |v| v.parse().expect("--rows must be an integer")),
            cols.map_or(64, |v| v.parse().expect("--cols must be an integer")),
        )),
    };
    let organizations = arg_value(&args, "--organization")
        .map(|spec| parse_size_list(&spec))
        .or(single.map(|size| vec![size]))
        .unwrap_or_else(|| vec![(64, 64), (128, 128), (256, 256), (512, 512), (1024, 1024)]);
    let passes: usize = arg_value(&args, "--passes")
        .map(|v| v.parse().expect("--passes must be an integer"))
        .unwrap_or(3);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_fault_sim.json".to_string());
    let dense = if args.iter().any(|a| a == "--no-dense") {
        None
    } else {
        let (dense_rows, dense_cols) = arg_value(&args, "--dense-size")
            .map(|spec| parse_size_list(&spec)[0])
            .unwrap_or((1024, 1024));
        let dense_faults: usize = arg_value(&args, "--dense-faults")
            .map(|v| v.parse().expect("--dense-faults must be an integer"))
            .unwrap_or(100_000);
        Some((dense_rows, dense_cols, dense_faults))
    };

    println!(
        "# Fault-simulation sweep throughput ({} organizations, {passes} passes per variant)",
        organizations.len()
    );
    let sweep = FaultSimSweep::measure_with_dense(&organizations, passes, dense);
    for result in &sweep.sizes {
        println!(
            "{}x{}: {} algorithms x {} faults, {} threads",
            result.rows,
            result.cols,
            result.algorithms.len(),
            result.fault_count,
            result.threads
        );
        match result.baseline {
            Some(baseline) => println!(
                "  baseline (seed-style serial, full walks):  {:>12.1} faults/sec",
                baseline.faults_per_sec
            ),
            None => println!("  baseline (seed-style serial):              skipped above 256x256"),
        }
        let vs_baseline = |speedup: Option<f64>| {
            speedup.map_or_else(String::new, |s| format!("   ({s:.1}x vs baseline)"))
        };
        println!(
            "  kernel serial (shared walk + early exit):  {:>12.1} faults/sec{}",
            result.kernel_serial.faults_per_sec,
            vs_baseline(result.speedup_serial())
        );
        println!(
            "  kernel parallel (+ threaded sweep):        {:>12.1} faults/sec{}",
            result.kernel_parallel.faults_per_sec,
            vs_baseline(result.speedup_parallel())
        );
        println!(
            "  lane-batched serial (64 faults per walk):  {:>12.1} faults/sec   ({:.1}x vs kernel)",
            result.batched.faults_per_sec,
            result.speedup_batched_vs_kernel()
        );
        println!(
            "  lane-batched parallel (cohorts on threads):{:>12.1} faults/sec   ({:.1}x vs kernel)",
            result.batched_parallel.faults_per_sec,
            result.speedup_batched_parallel_vs_kernel()
        );
    }

    if let Some(section) = &sweep.dense {
        println!(
            "dense section at {}x{} ({}):",
            section.rows, section.cols, section.algorithm
        );
        println!(
            "  standard list ({} faults, batched serial): {:>12.1} faults/sec",
            section.standard_fault_count, section.standard.faults_per_sec
        );
        println!(
            "  {} ({} faults, batched serial):   {:>12.1} faults/sec   ({:.2}x vs standard)",
            section.population,
            section.fault_count,
            section.dense.faults_per_sec,
            section.speedup_dense_vs_standard()
        );
        println!(
            "  dense parallel ({} worker threads):        {:>12.1} faults/sec",
            section.threads, section.dense_parallel.faults_per_sec
        );
        println!(
            "  dense shuffled (packed-order execution):   {:>12.1} faults/sec   ({:.2}x vs ordered)",
            section.dense_shuffled.faults_per_sec,
            section.speedup_shuffled_vs_ordered()
        );
        println!(
            "  boxed dispatch (escape-hatch ablation):    {:>12.1} faults/sec   (enum {:.2}x faster)",
            section.boxed.faults_per_sec,
            section.speedup_enum_vs_boxed()
        );
        println!(
            "  packer vs greedy ({} overlap-heavy faults): {} vs {} merged steps ({:.2}x smaller)",
            section.packer.fault_count,
            section.packer.packed_schedule_steps,
            section.packer.greedy_schedule_steps,
            section.packer.speedup_packed_schedule()
        );
    }

    std::fs::write(&out, sweep.to_json()).expect("write benchmark JSON");
    println!("wrote {out}");
}
