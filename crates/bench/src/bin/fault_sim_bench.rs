//! Measures fault-simulation sweep throughput across array organizations
//! and writes `BENCH_fault_sim.json`.
//!
//! ```text
//! cargo run --release -p bench --bin fault_sim_bench                  # 64x64 .. 512x512
//! cargo run --release -p bench --bin fault_sim_bench -- --organization 64x64,128x128
//! cargo run --release -p bench --bin fault_sim_bench -- --rows 16 --cols 16
//! cargo run --release -p bench --bin fault_sim_bench -- --passes 5 --out custom.json
//! ```
//!
//! The workload is the acceptance sweep of the kernel work: the standard
//! fault list × the paper's Table 1 algorithms, compared against a frozen
//! replica of the original per-fault-allocating serial implementation,
//! measured at every organization of the `--organization` list (the
//! ROADMAP's 64×64 → 512×512 scaling sweep by default).

use bench::cli::{arg_value, parse_size_list};
use bench::throughput::FaultSimSweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--rows`/`--cols` select a single organization (the pre-sweep CLI);
    // `--organization` takes the comma list.
    let single = match (arg_value(&args, "--rows"), arg_value(&args, "--cols")) {
        (None, None) => None,
        (rows, cols) => Some((
            rows.map_or(64, |v| v.parse().expect("--rows must be an integer")),
            cols.map_or(64, |v| v.parse().expect("--cols must be an integer")),
        )),
    };
    let organizations = arg_value(&args, "--organization")
        .map(|spec| parse_size_list(&spec))
        .or(single.map(|size| vec![size]))
        .unwrap_or_else(|| vec![(64, 64), (128, 128), (256, 256), (512, 512)]);
    let passes: usize = arg_value(&args, "--passes")
        .map(|v| v.parse().expect("--passes must be an integer"))
        .unwrap_or(3);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_fault_sim.json".to_string());

    println!(
        "# Fault-simulation sweep throughput ({} organizations, {passes} passes per variant)",
        organizations.len()
    );
    let sweep = FaultSimSweep::measure(&organizations, passes);
    for result in &sweep.sizes {
        println!(
            "{}x{}: {} algorithms x {} faults, {} threads",
            result.rows,
            result.cols,
            result.algorithms.len(),
            result.fault_count,
            result.threads
        );
        println!(
            "  baseline (seed-style serial, full walks):  {:>12.1} faults/sec",
            result.baseline.faults_per_sec
        );
        println!(
            "  kernel serial (shared walk + early exit):  {:>12.1} faults/sec   ({:.1}x)",
            result.kernel_serial.faults_per_sec,
            result.speedup_serial()
        );
        println!(
            "  kernel parallel (+ threaded sweep):        {:>12.1} faults/sec   ({:.1}x)",
            result.kernel_parallel.faults_per_sec,
            result.speedup_parallel()
        );
    }

    std::fs::write(&out, sweep.to_json()).expect("write benchmark JSON");
    println!("wrote {out}");
}
