//! Measures fault-simulation sweep throughput and writes
//! `BENCH_fault_sim.json`.
//!
//! ```text
//! cargo run --release -p bench --bin fault_sim_bench            # 64×64
//! cargo run --release -p bench --bin fault_sim_bench -- --rows 128 --cols 128
//! cargo run --release -p bench --bin fault_sim_bench -- --out custom.json
//! ```
//!
//! The workload is the acceptance sweep of the kernel work: the standard
//! fault list × the paper's Table 1 algorithms, compared against a frozen
//! replica of the original per-fault-allocating serial implementation.

use bench::throughput::fault_sim_throughput;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows")
        .map(|v| v.parse().expect("--rows must be an integer"))
        .unwrap_or(64);
    let cols: u32 = arg_value(&args, "--cols")
        .map(|v| v.parse().expect("--cols must be an integer"))
        .unwrap_or(64);
    let passes: usize = arg_value(&args, "--passes")
        .map(|v| v.parse().expect("--passes must be an integer"))
        .unwrap_or(3);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_fault_sim.json".to_string());

    println!("# Fault-simulation sweep throughput ({rows}x{cols}, {passes} passes per variant)");
    let result = fault_sim_throughput(rows, cols, passes);
    println!(
        "workload: {} algorithms x {} faults = {} simulations per pass, {} threads available",
        result.algorithms.len(),
        result.fault_count,
        result.simulations_per_pass,
        result.threads
    );
    println!(
        "baseline (seed-style serial, full walks):  {:>12.1} faults/sec",
        result.baseline.faults_per_sec
    );
    println!(
        "kernel serial (shared walk + early exit):  {:>12.1} faults/sec   ({:.1}x)",
        result.kernel_serial.faults_per_sec,
        result.speedup_serial()
    );
    println!(
        "kernel parallel (+ threaded sweep):        {:>12.1} faults/sec   ({:.1}x)",
        result.kernel_parallel.faults_per_sec,
        result.speedup_parallel()
    );

    std::fs::write(&out, result.to_json()).expect("write benchmark JSON");
    println!("wrote {out}");
}
