//! Measures fault-simulation sweep throughput across array organizations
//! and writes `BENCH_fault_sim.json`.
//!
//! ```text
//! cargo run --release -p bench --bin fault_sim_bench                  # 64x64 .. 1024x1024
//! cargo run --release -p bench --bin fault_sim_bench -- --organization 64x64,128x128
//! cargo run --release -p bench --bin fault_sim_bench -- --rows 16 --cols 16
//! cargo run --release -p bench --bin fault_sim_bench -- --passes 5 --out custom.json
//! ```
//!
//! The workload is the acceptance sweep of the kernel work: the standard
//! fault list × the paper's Table 1 algorithms, measured per organization
//! for the per-fault kernel (serial + parallel) and the lane-batched
//! backend (≤64 faults per walk dispatch, serial + parallel), compared
//! against a frozen replica of the original per-fault-allocating serial
//! implementation up to 256×256 (`baseline_skipped` beyond — see
//! `bench::throughput::BASELINE_CELL_CAP`). The default sweep is the
//! ROADMAP's 64×64 → 1024×1024 scaling ladder.

use bench::cli::{arg_value, parse_size_list};
use bench::throughput::FaultSimSweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--rows`/`--cols` select a single organization (the pre-sweep CLI);
    // `--organization` takes the comma list.
    let single = match (arg_value(&args, "--rows"), arg_value(&args, "--cols")) {
        (None, None) => None,
        (rows, cols) => Some((
            rows.map_or(64, |v| v.parse().expect("--rows must be an integer")),
            cols.map_or(64, |v| v.parse().expect("--cols must be an integer")),
        )),
    };
    let organizations = arg_value(&args, "--organization")
        .map(|spec| parse_size_list(&spec))
        .or(single.map(|size| vec![size]))
        .unwrap_or_else(|| vec![(64, 64), (128, 128), (256, 256), (512, 512), (1024, 1024)]);
    let passes: usize = arg_value(&args, "--passes")
        .map(|v| v.parse().expect("--passes must be an integer"))
        .unwrap_or(3);
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_fault_sim.json".to_string());

    println!(
        "# Fault-simulation sweep throughput ({} organizations, {passes} passes per variant)",
        organizations.len()
    );
    let sweep = FaultSimSweep::measure(&organizations, passes);
    for result in &sweep.sizes {
        println!(
            "{}x{}: {} algorithms x {} faults, {} threads",
            result.rows,
            result.cols,
            result.algorithms.len(),
            result.fault_count,
            result.threads
        );
        match result.baseline {
            Some(baseline) => println!(
                "  baseline (seed-style serial, full walks):  {:>12.1} faults/sec",
                baseline.faults_per_sec
            ),
            None => println!("  baseline (seed-style serial):              skipped above 256x256"),
        }
        let vs_baseline = |speedup: Option<f64>| {
            speedup.map_or_else(String::new, |s| format!("   ({s:.1}x vs baseline)"))
        };
        println!(
            "  kernel serial (shared walk + early exit):  {:>12.1} faults/sec{}",
            result.kernel_serial.faults_per_sec,
            vs_baseline(result.speedup_serial())
        );
        println!(
            "  kernel parallel (+ threaded sweep):        {:>12.1} faults/sec{}",
            result.kernel_parallel.faults_per_sec,
            vs_baseline(result.speedup_parallel())
        );
        println!(
            "  lane-batched serial (64 faults per walk):  {:>12.1} faults/sec   ({:.1}x vs kernel)",
            result.batched.faults_per_sec,
            result.speedup_batched_vs_kernel()
        );
        println!(
            "  lane-batched parallel (cohorts on threads):{:>12.1} faults/sec   ({:.1}x vs kernel)",
            result.batched_parallel.faults_per_sec,
            result.speedup_batched_parallel_vs_kernel()
        );
    }

    std::fs::write(&out, sweep.to_json()).expect("write benchmark JSON");
    println!("wrote {out}");
}
