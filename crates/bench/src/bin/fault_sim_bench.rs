//! Measures fault-simulation sweep throughput across array organizations
//! and writes `BENCH_fault_sim.json`.
//!
//! ```text
//! cargo run --release -p bench --bin fault_sim_bench                  # 64x64 .. 1024x1024
//! cargo run --release -p bench --bin fault_sim_bench -- --organization 64x64,128x128
//! cargo run --release -p bench --bin fault_sim_bench -- --rows 16 --cols 16
//! cargo run --release -p bench --bin fault_sim_bench -- --passes 5 --out custom.json
//! cargo run --release -p bench --bin fault_sim_bench -- --dense-size 512x512 --dense-faults 50000
//! cargo run --release -p bench --bin fault_sim_bench -- --no-dense --no-campaign --no-daemon --no-scheduler
//! ```
//!
//! The workload is the acceptance sweep of the kernel work: the standard
//! fault list × the paper's Table 1 algorithms, measured per organization
//! for the per-fault kernel (serial + parallel) and the lane-batched
//! backend (≤64 faults per walk dispatch, serial + parallel), compared
//! against a frozen replica of the original per-fault-allocating serial
//! implementation up to 256×256 (`baseline_skipped` beyond — see
//! `bench::throughput::BASELINE_CELL_CAP`). The default sweep is the
//! ROADMAP's 64×64 → 1024×1024 scaling ladder, followed by the dense
//! section — a generated ≥100k-fault population vs. the standard list at
//! 1024×1024 and the address-aware packer vs. the greedy planner on an
//! overlap-heavy population (skip with `--no-dense`) — and the campaign
//! section, the crash-safe campaign runner's jobs/sec against a direct
//! per-job loop (skip with `--no-campaign`), the daemon section, the
//! dynamic-intake path's sustained jobs/sec and overload shed fraction
//! (skip with `--no-daemon`), and the scheduler section, interned
//! `OutcomeCode` report assembly against the classic
//! three-strings-per-fault `CoverageReport` (skip with
//! `--no-scheduler`).
//!
//! Exit codes: `0` on success, `2` for a malformed command line, `3` when
//! the output file cannot be written.

use std::process::ExitCode;

use bench::cli::{arg_value, parse_flag, parse_size_list, CliError};
use bench::throughput::FaultSimSweep;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(error) => {
            eprintln!("fault_sim_bench: {error}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    // `--rows`/`--cols` select a single organization (the pre-sweep CLI);
    // `--organization` takes the comma list.
    let single = match (arg_value(args, "--rows"), arg_value(args, "--cols")) {
        (None, None) => None,
        _ => Some((
            parse_flag(args, "--rows", 64u32)?,
            parse_flag(args, "--cols", 64u32)?,
        )),
    };
    let organizations = match arg_value(args, "--organization") {
        Some(spec) => parse_size_list(&spec, "--organization")?,
        None => single.map_or_else(
            || vec![(64, 64), (128, 128), (256, 256), (512, 512), (1024, 1024)],
            |size| vec![size],
        ),
    };
    let passes: usize = parse_flag(args, "--passes", 3)?;
    let out = arg_value(args, "--out").unwrap_or_else(|| "BENCH_fault_sim.json".to_string());
    let dense = if args.iter().any(|a| a == "--no-dense") {
        None
    } else {
        let (dense_rows, dense_cols) = match arg_value(args, "--dense-size") {
            Some(spec) => parse_size_list(&spec, "--dense-size")?[0],
            None => (1024, 1024),
        };
        let dense_faults: usize = parse_flag(args, "--dense-faults", 100_000)?;
        Some((dense_rows, dense_cols, dense_faults))
    };
    let campaign = !args.iter().any(|a| a == "--no-campaign");
    let daemon = !args.iter().any(|a| a == "--no-daemon");
    let scheduler = !args.iter().any(|a| a == "--no-scheduler");

    println!(
        "# Fault-simulation sweep throughput ({} organizations, {passes} passes per variant)",
        organizations.len()
    );
    let sweep =
        FaultSimSweep::measure_full(&organizations, passes, dense, campaign, daemon, scheduler);
    for result in &sweep.sizes {
        println!(
            "{}x{}: {} algorithms x {} faults, {} threads",
            result.rows,
            result.cols,
            result.algorithms.len(),
            result.fault_count,
            result.threads
        );
        match result.baseline {
            Some(baseline) => println!(
                "  baseline (seed-style serial, full walks):  {:>12.1} faults/sec",
                baseline.faults_per_sec
            ),
            None => println!("  baseline (seed-style serial):              skipped above 256x256"),
        }
        let vs_baseline = |speedup: Option<f64>| {
            speedup.map_or_else(String::new, |s| format!("   ({s:.1}x vs baseline)"))
        };
        println!(
            "  kernel serial (shared walk + early exit):  {:>12.1} faults/sec{}",
            result.kernel_serial.faults_per_sec,
            vs_baseline(result.speedup_serial())
        );
        println!(
            "  kernel parallel (+ threaded sweep):        {:>12.1} faults/sec{}",
            result.kernel_parallel.faults_per_sec,
            vs_baseline(result.speedup_parallel())
        );
        println!(
            "  lane-batched serial (64 faults per walk):  {:>12.1} faults/sec   ({:.1}x vs kernel)",
            result.batched.faults_per_sec,
            result.speedup_batched_vs_kernel()
        );
        println!(
            "  lane-batched parallel (cohorts on threads):{:>12.1} faults/sec   ({:.1}x vs kernel)",
            result.batched_parallel.faults_per_sec,
            result.speedup_batched_parallel_vs_kernel()
        );
    }

    if let Some(section) = &sweep.dense {
        println!(
            "dense section at {}x{} ({}):",
            section.rows, section.cols, section.algorithm
        );
        println!(
            "  standard list ({} faults, batched serial): {:>12.1} faults/sec",
            section.standard_fault_count, section.standard.faults_per_sec
        );
        println!(
            "  {} ({} faults, batched serial):   {:>12.1} faults/sec   ({:.2}x vs standard)",
            section.population,
            section.fault_count,
            section.dense.faults_per_sec,
            section.speedup_dense_vs_standard()
        );
        println!(
            "  dense parallel ({} worker threads):        {:>12.1} faults/sec",
            section.threads, section.dense_parallel.faults_per_sec
        );
        println!(
            "  dense shuffled (packed-order execution):   {:>12.1} faults/sec   ({:.2}x vs ordered)",
            section.dense_shuffled.faults_per_sec,
            section.speedup_shuffled_vs_ordered()
        );
        println!(
            "  boxed dispatch (escape-hatch ablation):    {:>12.1} faults/sec   (enum {:.2}x faster)",
            section.boxed.faults_per_sec,
            section.speedup_enum_vs_boxed()
        );
        println!(
            "  packer vs greedy ({} overlap-heavy faults): {} vs {} merged steps ({:.2}x smaller)",
            section.packer.fault_count,
            section.packer.packed_schedule_steps,
            section.packer.greedy_schedule_steps,
            section.packer.speedup_packed_schedule()
        );
    }

    if let Some(section) = &sweep.campaign {
        println!("campaign section ({} jobs):", section.jobs);
        println!(
            "  direct per-job loop (no journal):          {:>12.1} jobs/sec",
            section.direct_jobs_per_sec
        );
        println!(
            "  journaled campaign (1 thread):             {:>12.1} jobs/sec   ({:.2}x vs direct)",
            section.campaign_jobs_per_sec,
            section.speedup_campaign_vs_direct()
        );
        println!(
            "  journaled campaign ({} worker threads):     {:>12.1} jobs/sec",
            section.threads, section.campaign_parallel_jobs_per_sec
        );
    }

    if let Some(section) = &sweep.daemon {
        println!(
            "daemon section ({} jobs offered per pass):",
            section.offered
        );
        println!(
            "  sustained intake (spool + journal v2):     {:>12.1} jobs/sec",
            section.intake_jobs_per_sec
        );
        println!(
            "  overload shed (queue bound {}):             {:.0}% answered queue-full",
            section.queue_limit,
            section.shed_fraction * 100.0
        );
    }

    if let Some(section) = &sweep.scheduler {
        println!(
            "scheduler section ({} outcomes per pass):",
            section.outcomes
        );
        println!(
            "  strings assembly (3 strings per outcome):  {:>12.1} outcomes/sec",
            section.strings_outcomes_per_sec
        );
        println!(
            "  interned assembly (16-byte codes):         {:>12.1} outcomes/sec   ({:.2}x vs strings)",
            section.interned_outcomes_per_sec,
            section.speedup_interned_vs_strings()
        );
    }

    if let Err(error) = std::fs::write(&out, sweep.to_json()) {
        eprintln!("fault_sim_bench: cannot write {out}: {error}");
        return Ok(ExitCode::from(3));
    }
    println!("wrote {out}");
    Ok(ExitCode::SUCCESS)
}
