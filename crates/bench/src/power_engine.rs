//! Power-engine throughput measurement.
//!
//! The paper's central artifact is the cycle-accurate low-power pre-charge
//! engine behind `TestSession::run` and `reproduce_table1`. This module
//! measures how many clock cycles per second the rebuilt engine (shared
//! [`SchedulePlan`] arrays + the row-replay kernel + the parallel Table 1
//! harness) sustains, against a frozen replica of the seed
//! implementation, so the speedup is tracked as a number instead of a
//! claim. The `power_engine_bench` binary writes the result to
//! `BENCH_power_engine.json`.
//!
//! The baseline below deliberately preserves the seed's hot-path
//! structure: address sequences re-materialised per element through
//! `AddressOrder::sequence`, one freshly allocated [`CycleCommand`] (mask
//! `Vec` included) per clock cycle, every cycle executed on the analog
//! controller, and a strictly serial Table 1. Before anything is timed,
//! the baseline outcomes are asserted **bit-identical** to the rebuilt
//! engine's (and the parallel Table 1 to the serial one) — a benchmark of
//! diverging engines would be meaningless.
//!
//! Mirroring the fault-sim sweep, the frozen seed replica is *capped* at
//! [`BASELINE_CELL_CAP`] cells (256×256): beyond that its serial
//! cycle-by-cycle loop would dominate the sweep's wall time, so larger
//! sizes record `baseline_skipped`, omit the baseline-relative metrics
//! and gate on `speedup_replay_vs_simulated` — the row-replay kernel
//! against the full simulation ([`TestSession::run_fully_simulated`]),
//! both serial, both current code, measured in the same process so the
//! ratio transfers across runner hardware. That is what makes the
//! 1024×1024 sweep entry affordable.
//!
//! [`SchedulePlan`]: lp_precharge::scheduler::SchedulePlan

use std::time::Instant;

use lp_precharge::engine::{SessionOutcome, TestSession};
use lp_precharge::mode::OperatingMode;
use lp_precharge::report::{paper_prr_for, reproduce_table1, reproduce_table1_serial};
use lp_precharge::scheduler::LpOptions;
use march_test::address_order::{AddressOrder, WordLineAfterWordLine};
use march_test::algorithm::MarchTest;
use march_test::library;
use march_test::operation::MarchOp;
use power_model::analytic::AnalyticPowerModel;
use power_model::calibration::CalibratedParameters;
use power_model::meter::PowerMeter;
use power_model::peak::PeakTracker;
use power_model::report::{ModeReport, Table1Row};
use sram_model::config::{ArrayOrganization, SramConfig};
use sram_model::controller::MemoryController;
use sram_model::error::SramError;
use sram_model::operation::{CycleCommand, MemOperation};

/// Runs one March test in one mode with the seed's schedule structure:
/// per-element address `Vec`s, one allocated command per cycle, full
/// cycle-by-cycle execution.
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
///
/// # Panics
///
/// Panics if the organization produces an empty address sequence.
pub fn baseline_run_session(
    config: &SramConfig,
    test: &MarchTest,
    mode: OperatingMode,
) -> Result<SessionOutcome, SramError> {
    let organization = *config.organization();
    let technology = *config.technology();
    let options = LpOptions::default();
    let order = WordLineAfterWordLine;

    // The seed scheduler: one materialised address sequence per element.
    let elements: Vec<(Vec<sram_model::address::Address>, Vec<MarchOp>)> = test
        .elements()
        .iter()
        .map(|element| {
            (
                order.sequence(&organization, element.direction()),
                element.ops().to_vec(),
            )
        })
        .collect();

    let mut controller = MemoryController::new(*config);
    let mut read_mismatches = 0u64;
    let mut unreliable_reads = 0u64;
    let mut peak = PeakTracker::new(technology.clock_period);

    for (addresses, ops) in &elements {
        for (position, &address) in addresses.iter().enumerate() {
            let row = address.row(&organization);
            let col = address.col(&organization).value();
            let next_in_same_row = addresses
                .get(position + 1)
                .map(|a| a.row(&organization) == row)
                .unwrap_or(false);
            for (op_index, &op) in ops.iter().enumerate() {
                let mem_op = match op {
                    MarchOp::W0 => MemOperation::Write(false),
                    MarchOp::W1 => MemOperation::Write(true),
                    MarchOp::R0 | MarchOp::R1 => MemOperation::Read,
                };
                let command = if !mode.is_low_power() {
                    CycleCommand::functional(address, mem_op)
                } else if options.row_transition_restore
                    && op_index == ops.len() - 1
                    && !next_in_same_row
                {
                    CycleCommand::low_power_restore_all(address, mem_op)
                } else {
                    // The seed allocated the two-column mask afresh every
                    // cycle.
                    let mut columns = vec![col];
                    for ahead in 1..=options.lookahead_columns as usize {
                        if let Some(a) = addresses.get(position + ahead) {
                            if a.row(&organization) == row {
                                let c = a.col(&organization).value();
                                if !columns.contains(&c) {
                                    columns.push(c);
                                }
                            }
                        }
                    }
                    CycleCommand::low_power(address, mem_op, columns)
                };
                let outcome = controller.execute(command)?;
                peak.record_total(outcome.energy.total());
                if outcome.read_value.is_some() && !outcome.read_reliable {
                    unreliable_reads += 1;
                }
                if let (Some(expected), Some(observed)) = (op.expected_value(), outcome.read_value)
                {
                    if expected != observed {
                        read_mismatches += 1;
                    }
                }
            }
        }
    }

    let mut meter = PowerMeter::new(technology.clock_period);
    meter.record_aggregate(controller.accumulated_energy(), controller.cycles());
    let breakdown = meter.breakdown();
    let report = ModeReport::from_meter(&meter, &breakdown);
    let peak_to_average = peak.peak_to_average(report.average_power);
    Ok(SessionOutcome {
        mode,
        test_name: test.name().to_string(),
        report,
        breakdown,
        stress: controller.stress_report(),
        faulty_swaps: controller.total_faulty_swaps(),
        read_mismatches,
        unreliable_reads,
        peak_power: peak.peak_power(),
        peak_to_average,
    })
}

/// The seed's Table 1: strictly serial, one baseline session pair per
/// algorithm.
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
pub fn baseline_table1(config: &SramConfig) -> Result<Vec<Table1Row>, SramError> {
    library::table1_algorithms()
        .iter()
        .map(|test| {
            let functional = baseline_run_session(config, test, OperatingMode::Functional)?;
            let low_power = baseline_run_session(config, test, OperatingMode::LowPowerTest)?;
            let pf = functional.report.average_power.value();
            let plpt = low_power.report.average_power.value();
            let prr = if pf > 0.0 { 1.0 - plpt / pf } else { 0.0 };
            let analytic = AnalyticPowerModel::new(CalibratedParameters::derive(
                config.technology(),
                config.organization(),
            ));
            Ok(Table1Row {
                algorithm: test.name().to_string(),
                elements: test.element_count(),
                operations: test.operation_count(),
                reads: test.read_count(),
                writes: test.write_count(),
                prr_simulated_percent: prr * 100.0,
                prr_analytic_percent: analytic.power_reduction_ratio(test, config.organization())
                    * 100.0,
                prr_paper_percent: paper_prr_for(test.name()).unwrap_or(f64::NAN),
            })
        })
        .collect()
}

pub use crate::BASELINE_CELL_CAP;

/// Seconds and derived rate of one timed variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineTiming {
    /// Simulated clock cycles per second.
    pub cycles_per_sec: f64,
    /// Wall-clock seconds of one full Table 1 pass (averaged over the
    /// timed passes): all five algorithms in both operating modes.
    pub table1_seconds: f64,
}

/// The engine throughput comparison for one array organization.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerEngineSize {
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// Clock cycles in one full Table 1 pass (all algorithms, both modes).
    pub cycles_per_pass: u64,
    /// The frozen seed-style engine; `None` above [`BASELINE_CELL_CAP`]
    /// cells, where the reference loop is skipped.
    pub baseline: Option<EngineTiming>,
    /// The rebuilt engine (schedule plan + row replay + parallel rows).
    pub engine: EngineTiming,
    /// The row-replay kernel run serially (one session per algorithm and
    /// mode through [`TestSession::run`]), the numerator of the
    /// machine-relative gate metric.
    pub replay_serial: EngineTiming,
    /// The full cycle-by-cycle simulation run serially
    /// ([`TestSession::run_fully_simulated`]) — the golden reference
    /// path, current code, measured at every size.
    pub simulated: EngineTiming,
}

impl PowerEngineSize {
    /// `true` when the frozen seed-style baseline was skipped for this
    /// size (above [`BASELINE_CELL_CAP`] cells).
    pub fn baseline_skipped(&self) -> bool {
        self.baseline.is_none()
    }

    /// Throughput gain of the rebuilt engine in simulated cycles/second,
    /// when the baseline replica was measured.
    pub fn speedup_cycles(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.engine.cycles_per_sec / baseline.cycles_per_sec)
    }

    /// Wall-time gain of one full Table 1 reproduction, when the baseline
    /// replica was measured.
    pub fn speedup_table1(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| baseline.table1_seconds / self.engine.table1_seconds)
    }

    /// Throughput gain of the serial row-replay kernel over the serial
    /// full simulation — the machine-relative metric measured at every
    /// size (including the ones whose seed replica is skipped), the
    /// analogue of the fault-sim sweep's `speedup_batched_vs_kernel`.
    pub fn speedup_replay_vs_simulated(&self) -> f64 {
        self.replay_serial.cycles_per_sec / self.simulated.cycles_per_sec
    }
}

/// The full sweep over array organizations.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerEngineThroughput {
    /// Names of the algorithms measured (the paper's Table 1 set).
    pub algorithms: Vec<String>,
    /// Timed passes per variant.
    pub passes: usize,
    /// Worker threads available to the parallel Table 1.
    pub threads: usize,
    /// One entry per organization, in sweep order.
    pub sizes: Vec<PowerEngineSize>,
}

impl PowerEngineThroughput {
    /// Renders the result as a JSON object (the workspace is offline and
    /// carries no serde, so the fields are formatted by hand).
    pub fn to_json(&self) -> String {
        let algorithms = self
            .algorithms
            .iter()
            .map(|name| format!("\"{name}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let sizes = self
            .sizes
            .iter()
            .map(|s| {
                let mut fields = vec![
                    format!("\"rows\": {}", s.rows),
                    format!("\"cols\": {}", s.cols),
                    format!("\"cycles_per_pass\": {}", s.cycles_per_pass),
                    format!("\"baseline_skipped\": {}", s.baseline_skipped()),
                ];
                if let Some(baseline) = s.baseline {
                    fields.push(format!(
                        "\"baseline_cycles_per_sec\": {:.1}",
                        baseline.cycles_per_sec
                    ));
                    fields.push(format!(
                        "\"baseline_table1_seconds\": {:.4}",
                        baseline.table1_seconds
                    ));
                }
                fields.push(format!(
                    "\"engine_cycles_per_sec\": {:.1}",
                    s.engine.cycles_per_sec
                ));
                fields.push(format!(
                    "\"engine_table1_seconds\": {:.4}",
                    s.engine.table1_seconds
                ));
                fields.push(format!(
                    "\"replay_serial_cycles_per_sec\": {:.1}",
                    s.replay_serial.cycles_per_sec
                ));
                fields.push(format!(
                    "\"simulated_cycles_per_sec\": {:.1}",
                    s.simulated.cycles_per_sec
                ));
                if let Some(speedup) = s.speedup_cycles() {
                    fields.push(format!("\"speedup_cycles\": {speedup:.2}"));
                }
                if let Some(speedup) = s.speedup_table1() {
                    fields.push(format!("\"speedup_table1\": {speedup:.2}"));
                }
                fields.push(format!(
                    "\"speedup_replay_vs_simulated\": {:.2}",
                    s.speedup_replay_vs_simulated()
                ));
                format!("    {{\n      {}\n    }}", fields.join(",\n      "))
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"power_engine\",\n  \"algorithms\": [{algorithms}],\n  \
             \"passes\": {},\n  \"threads\": {},\n  \"sizes\": [\n{sizes}\n  ]\n}}\n",
            self.passes, self.threads,
        )
    }
}

fn config_for(rows: u32, cols: u32) -> SramConfig {
    SramConfig::builder()
        .organization(ArrayOrganization::new(rows, cols).expect("valid organization"))
        .build()
        .expect("default technology is valid")
}

/// Asserts the engine paths reproduce each other bit for bit on
/// `config`: the row-replay kernel against the full simulation for every
/// algorithm and mode (always), every `SessionOutcome` against the frozen
/// seed baseline (up to [`BASELINE_CELL_CAP`] cells — beyond that the
/// replica is too slow to even verify), and the parallel Table 1 against
/// the serial one.
///
/// # Panics
///
/// Panics on any divergence — the benchmark numbers would be meaningless.
pub fn assert_engine_equivalence(config: &SramConfig) {
    let measure_baseline = config.organization().capacity() <= BASELINE_CELL_CAP;
    let session = TestSession::new(*config);
    for test in library::table1_algorithms() {
        for mode in [OperatingMode::Functional, OperatingMode::LowPowerTest] {
            let rebuilt = session.run(&test, mode).expect("rebuilt session runs");
            let simulated = session
                .run_fully_simulated(&test, mode, false)
                .expect("simulated session runs");
            assert_eq!(
                simulated,
                rebuilt,
                "{} {:?}: row-replay kernel diverged from the full simulation",
                test.name(),
                mode
            );
            if measure_baseline {
                let baseline =
                    baseline_run_session(config, &test, mode).expect("baseline session runs");
                assert_eq!(
                    baseline,
                    rebuilt,
                    "{} {:?}: rebuilt engine diverged from the seed baseline",
                    test.name(),
                    mode
                );
            }
        }
    }
    let parallel = reproduce_table1(config).expect("parallel table 1 runs");
    let serial = reproduce_table1_serial(config).expect("serial table 1 runs");
    assert_eq!(
        parallel, serial,
        "parallel Table 1 rows diverged from the serial path"
    );
}

/// One serial pass of all Table 1 algorithms in both modes through
/// `session`, on the row-replay kernel (`simulated == false`) or the full
/// cycle-by-cycle simulation (`simulated == true`).
fn serial_sessions_pass(session: &TestSession, simulated: bool) {
    for test in library::table1_algorithms() {
        for mode in [OperatingMode::Functional, OperatingMode::LowPowerTest] {
            let outcome = if simulated {
                session.run_fully_simulated(&test, mode, false)
            } else {
                session.run(&test, mode)
            };
            std::hint::black_box(outcome.expect("session runs"));
        }
    }
}

fn time_table1(passes: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm-up (also populates the shared schedule-plan cache)
    let start = Instant::now();
    for _ in 0..passes {
        run();
    }
    start.elapsed().as_secs_f64() / passes as f64
}

/// Measures baseline vs. rebuilt engine throughput on one organization.
/// The frozen seed replica is skipped above [`BASELINE_CELL_CAP`] cells.
///
/// # Panics
///
/// Panics if the organization is invalid or the engines diverge.
pub fn power_engine_size(rows: u32, cols: u32, passes: usize) -> PowerEngineSize {
    let config = config_for(rows, cols);
    assert_engine_equivalence(&config);

    let organization = *config.organization();
    let cycles_per_pass: u64 = library::table1_algorithms()
        .iter()
        .map(|test| 2 * test.total_operations(u64::from(organization.capacity())))
        .sum();
    let timing = |seconds: f64| EngineTiming {
        cycles_per_sec: cycles_per_pass as f64 / seconds,
        table1_seconds: seconds,
    };

    let baseline = (organization.capacity() <= BASELINE_CELL_CAP).then(|| {
        timing(time_table1(passes, || {
            std::hint::black_box(baseline_table1(&config).expect("baseline table 1"));
        }))
    });
    let engine_table1_seconds = time_table1(passes, || {
        std::hint::black_box(reproduce_table1(&config).expect("rebuilt table 1"));
    });
    let session = TestSession::new(config);
    let replay_serial_seconds = time_table1(passes, || serial_sessions_pass(&session, false));
    let simulated_seconds = time_table1(passes, || serial_sessions_pass(&session, true));

    PowerEngineSize {
        rows,
        cols,
        cycles_per_pass,
        baseline,
        engine: timing(engine_table1_seconds),
        replay_serial: timing(replay_serial_seconds),
        simulated: timing(simulated_seconds),
    }
}

/// Measures the full sweep: one [`PowerEngineSize`] per organization.
///
/// # Panics
///
/// Panics if any organization is invalid or any equivalence gate fails.
pub fn power_engine_throughput(sizes: &[(u32, u32)], passes: usize) -> PowerEngineThroughput {
    PowerEngineThroughput {
        algorithms: library::table1_algorithms()
            .iter()
            .map(|t| t.name().to_string())
            .collect(),
        passes,
        threads: march_test::parallel::max_threads(),
        sizes: sizes
            .iter()
            .map(|&(rows, cols)| power_engine_size(rows, cols, passes))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_the_rebuilt_engine_exactly() {
        // The full gate on a small array: every algorithm, both modes,
        // plus parallel-vs-serial Table 1.
        assert_engine_equivalence(&config_for(4, 8));
    }

    #[test]
    fn throughput_experiment_runs_and_reports_consistent_numbers() {
        let result = power_engine_throughput(&[(4, 8)], 1);
        assert_eq!(result.algorithms.len(), 5);
        assert_eq!(result.sizes.len(), 1);
        let size = &result.sizes[0];
        assert_eq!(size.cycles_per_pass, 2 * 74 * 32);
        assert!(!size.baseline_skipped(), "4x8 is far below the cap");
        assert!(size.baseline.unwrap().cycles_per_sec > 0.0);
        assert!(size.engine.cycles_per_sec > 0.0);
        assert!(size.replay_serial.cycles_per_sec > 0.0);
        assert!(size.simulated.cycles_per_sec > 0.0);
        assert!(size.speedup_cycles().is_some());
        assert!(size.speedup_replay_vs_simulated() > 0.0);
        let json = result.to_json();
        assert!(json.contains("\"benchmark\": \"power_engine\""));
        assert!(json.contains("\"baseline_skipped\": false"));
        assert!(json.contains("\"speedup_table1\""));
        assert!(json.contains("\"speedup_replay_vs_simulated\""));
        assert!(json.contains("March C-"));
    }

    #[test]
    fn skipped_baseline_omits_relative_metrics_from_the_json() {
        // Rendering is checked on a hand-built entry: actually measuring
        // a >256x256 array is the (timed) benchmark binary's job, not a
        // unit test's.
        let timing = |seconds: f64| EngineTiming {
            cycles_per_sec: 1000.0 / seconds,
            table1_seconds: seconds,
        };
        let result = PowerEngineThroughput {
            algorithms: vec!["March C-".into()],
            passes: 1,
            threads: 1,
            sizes: vec![PowerEngineSize {
                rows: 1024,
                cols: 1024,
                cycles_per_pass: 1000,
                baseline: None,
                engine: timing(0.5),
                replay_serial: timing(1.0),
                simulated: timing(20.0),
            }],
        };
        let size = &result.sizes[0];
        assert!(size.baseline_skipped());
        assert_eq!(size.speedup_cycles(), None);
        assert_eq!(size.speedup_table1(), None);
        assert!((size.speedup_replay_vs_simulated() - 20.0).abs() < 1e-9);
        let json = result.to_json();
        assert!(json.contains("\"baseline_skipped\": true"));
        assert!(!json.contains("\"baseline_cycles_per_sec\""));
        assert!(!json.contains("\"speedup_cycles\""));
        assert!(!json.contains("\"speedup_table1\""));
        assert!(json.contains("\"speedup_replay_vs_simulated\": 20.00"));
        assert!(json.contains("\"replay_serial_cycles_per_sec\""));
        assert!(json.contains("\"simulated_cycles_per_sec\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }
}
