//! Fault-simulation throughput measurement.
//!
//! The paper's coverage and degree-of-freedom experiments are exhaustive
//! fault sweeps; this module measures how many fault simulations per
//! second the march kernel sustains and compares it against a frozen
//! replica of the original (pre-kernel) implementation, so the speedup is
//! tracked as a number instead of a claim. The `fault_sim_bench` binary
//! writes the result to `BENCH_fault_sim.json`.
//!
//! The baseline below deliberately preserves the seed's hot-path
//! structure: one fresh memory allocation per fault, address sequences
//! re-materialised per element via `AddressOrder::sequence`, every walk
//! run to completion, strictly serial. The kernel path shares one
//! precomputed [`MarchWalk`] per algorithm, reuses scratch memories,
//! stops at the first mismatch and (in the parallel variant) fans the
//! fault list out across threads. On top of that, the lane-batched
//! backend groups up to sixty-four faults into one walk dispatch
//! (`march_test::batch`); its speedup over the per-fault kernel is the
//! machine-relative metric the CI gate tracks at every size.
//!
//! The frozen baseline replica is *capped* at
//! [`BASELINE_CELL_CAP`] cells (256×256): beyond that it would dominate
//! the sweep's wall time, so larger sizes record `baseline_skipped` and
//! gate only on the batched-vs-kernel speedup — which is what makes the
//! 1024×1024 sweep entries affordable.
//!
//! Besides the per-size ladder, [`dense_sweep`] measures the
//! dense-population section: a generated ≥100k-fault population
//! ([`march_test::faultgen::FaultGen`]) against the 48-fault standard
//! list on the same 1024×1024 walk, plus the address-aware packer's
//! merged-schedule steps against the list-order greedy baseline on an
//! overlap-heavy population. The section also times two execution-model
//! ablations on the same population: a **shuffled copy**
//! (`speedup_shuffled_vs_ordered` — packed-order execution with the
//! streaming probe/outcome permutation should make population order
//! free) and a **boxed-dispatch replica** whose faults hide their inline
//! [`LaneFaultKind`](march_test::faults::LaneFaultKind) and ride the
//! `Box<dyn LaneFault>` escape hatch (`speedup_enum_vs_boxed` — what
//! devirtualizing the lane hot path buys). All ratios are
//! machine-relative and carry the tight CI gate.

use std::time::{Duration, Instant};

use march_test::address_order::AddressOrder;
use march_test::algorithm::MarchTest;
use march_test::batch::{CohortPlanner, FaultBatch};
use march_test::coverage::{
    evaluate_coverage_interned_on_walk, evaluate_coverage_on_walk, CoverageReport, SweepBackend,
    SweepOptions,
};
use march_test::executor::{MarchWalk, Mismatch};
use march_test::fault_sim::{DetectionMode, FaultSimOutcome};
use march_test::faultgen::FaultGen;
use march_test::faults::{Fault, FaultFactory, FaultyMemory, LaneFault};
use march_test::intern::{InternedSweep, NameTable, OutcomeCode};
use march_test::library;
use march_test::memory::{GoodMemory, MemoryModel};
use march_test::parallel::max_threads;
use march_test::rng::SplitMix64;
use sram_model::address::Address;
use sram_model::config::ArrayOrganization;

/// Seed of the committed dense benchmark populations: fixed so the
/// generated workload — and therefore the committed throughput numbers —
/// is identical on every runner.
pub const DENSE_POPULATION_SEED: u64 = 0x2006_DA7E;

/// Seed of the dense section's shuffled-permutation ablation: the
/// shuffled copy is the *same* population as the ordered one, reordered
/// by this fixed permutation, so the measured ratio isolates population
/// order from workload content.
pub const DENSE_SHUFFLE_SEED: u64 = 0x005A_FF1E;

/// Delegating wrapper that hides its inner fault's inline
/// [`march_test::faults::LaneFaultKind`] and exposes only the boxed
/// [`Fault::lane_form`] — the external-fault escape hatch, instantiated
/// here as a measured ablation. A population wrapped in this rides
/// `Cohort::BoxedLanes` (virtual dispatch, one heap allocation per lane
/// form) through the *same* kernel as the inline enum cohorts, so the
/// `speedup_enum_vs_boxed` ratio isolates exactly what devirtualization
/// buys.
#[derive(Debug)]
struct BoxedDispatch(Box<dyn Fault>);

impl Fault for BoxedDispatch {
    fn name(&self) -> String {
        self.0.name()
    }
    fn kind(&self) -> march_test::faults::FaultKind {
        self.0.kind()
    }
    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        self.0.write(memory, address, value);
    }
    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        self.0.read(memory, address)
    }
    fn involved_addresses(&self) -> Option<Vec<Address>> {
        self.0.involved_addresses()
    }
    fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
        self.0.lane_form()
    }
}

pub use crate::BASELINE_CELL_CAP;

/// The seed's March executor, frozen for comparison: re-allocates the
/// address sequence of every element and always runs the walk to the end.
fn baseline_run_march(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    memory: &mut dyn MemoryModel,
) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    for (element_index, element) in test.elements().iter().enumerate() {
        let addresses = order.sequence(organization, element.direction());
        for &address in &addresses {
            for &op in element.ops() {
                if let Some(value) = op.write_value() {
                    memory.write(address, value);
                } else {
                    let expected = op.expected_value().expect("reads have expectations");
                    let observed = memory.read(address);
                    if observed != expected {
                        mismatches.push(Mismatch {
                            element: element_index,
                            address,
                            expected,
                            observed,
                        });
                    }
                }
            }
        }
    }
    mismatches
}

/// The seed's coverage sweep, frozen for comparison: one fresh memory and
/// one full executor run per fault, strictly serial.
pub fn baseline_evaluate_coverage(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
) -> CoverageReport {
    let outcomes = faults
        .iter()
        .map(|factory| {
            let fault = factory();
            let fault_name = fault.name();
            let fault_kind = fault.kind();
            let mut memory =
                FaultyMemory::new(GoodMemory::filled(organization.capacity(), false), fault);
            let mismatches = baseline_run_march(test, order, organization, &mut memory);
            FaultSimOutcome {
                fault_name,
                fault_kind,
                test_name: test.name().to_string(),
                order_name: order.name().to_string(),
                detected: !mismatches.is_empty(),
                mismatches: mismatches.len(),
            }
        })
        .collect();
    CoverageReport::new(test.name(), order.name(), outcomes)
}

/// Seconds and derived rate of one timed sweep variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTiming {
    /// Wall-clock seconds for all passes of the variant.
    pub seconds: f64,
    /// Fault simulations per second.
    pub faults_per_sec: f64,
}

/// The full throughput comparison for one array organization.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimThroughput {
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// Names of the algorithms swept (the paper's Table 1 set).
    pub algorithms: Vec<String>,
    /// Number of faults in the standard list for this organization.
    pub fault_count: usize,
    /// Fault simulations per timed pass (`algorithms × fault_count`).
    pub simulations_per_pass: usize,
    /// Timed passes per variant.
    pub passes: usize,
    /// Worker threads available to the parallel variants.
    pub threads: usize,
    /// The frozen seed-style sweep; `None` above [`BASELINE_CELL_CAP`]
    /// cells, where the reference loop is skipped.
    pub baseline: Option<SweepTiming>,
    /// Shared-walk + packed-memory + early-exit kernel, serial — the PR 1
    /// per-fault kernel the batched backend is gated against.
    pub kernel_serial: SweepTiming,
    /// The same per-fault kernel fanned out across threads.
    pub kernel_parallel: SweepTiming,
    /// The lane-batched backend (≤64 faults per walk dispatch), serial.
    pub batched: SweepTiming,
    /// The lane-batched backend with threads taking whole cohorts.
    pub batched_parallel: SweepTiming,
}

impl FaultSimThroughput {
    /// `true` when the frozen seed-style baseline was skipped for this
    /// size (above [`BASELINE_CELL_CAP`] cells).
    pub fn baseline_skipped(&self) -> bool {
        self.baseline.is_none()
    }

    /// Throughput gain of the serial kernel over the baseline, when the
    /// baseline was measured.
    pub fn speedup_serial(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.kernel_serial.faults_per_sec / baseline.faults_per_sec)
    }

    /// Throughput gain of the parallel kernel over the baseline, when the
    /// baseline was measured.
    pub fn speedup_parallel(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.kernel_parallel.faults_per_sec / baseline.faults_per_sec)
    }

    /// Throughput gain of the serial batched backend over the baseline,
    /// when the baseline was measured.
    pub fn speedup_batched(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.batched.faults_per_sec / baseline.faults_per_sec)
    }

    /// Throughput gain of the serial batched backend over the serial
    /// per-fault kernel — the machine-relative metric measured at every
    /// size (including the ones whose baseline replica is skipped).
    pub fn speedup_batched_vs_kernel(&self) -> f64 {
        self.batched.faults_per_sec / self.kernel_serial.faults_per_sec
    }

    /// Throughput gain of the parallel batched backend over the parallel
    /// per-fault kernel. Printed for context but deliberately **not**
    /// written to the gated JSON: the per-fault parallel kernel scales
    /// with the worker count while a five-cohort batched sweep does not,
    /// so the ratio would not transfer between machines with different
    /// core counts (unlike the serial-vs-serial
    /// [`Self::speedup_batched_vs_kernel`], which the gate tracks).
    pub fn speedup_batched_parallel_vs_kernel(&self) -> f64 {
        self.batched_parallel.faults_per_sec / self.kernel_parallel.faults_per_sec
    }

    /// Renders this organization's measurements as one entry of the
    /// sweep's `sizes` array. Baseline-relative fields only appear when
    /// the baseline replica ran (`baseline_skipped` says so explicitly).
    fn to_json_entry(&self) -> String {
        let mut fields = vec![
            format!("\"rows\": {}", self.rows),
            format!("\"cols\": {}", self.cols),
            format!("\"fault_count\": {}", self.fault_count),
            format!("\"simulations_per_pass\": {}", self.simulations_per_pass),
            format!("\"baseline_skipped\": {}", self.baseline_skipped()),
        ];
        if let Some(baseline) = self.baseline {
            fields.push(format!(
                "\"baseline_faults_per_sec\": {:.1}",
                baseline.faults_per_sec
            ));
        }
        fields.push(format!(
            "\"kernel_serial_faults_per_sec\": {:.1}",
            self.kernel_serial.faults_per_sec
        ));
        fields.push(format!(
            "\"kernel_parallel_faults_per_sec\": {:.1}",
            self.kernel_parallel.faults_per_sec
        ));
        fields.push(format!(
            "\"batched_faults_per_sec\": {:.1}",
            self.batched.faults_per_sec
        ));
        fields.push(format!(
            "\"batched_parallel_faults_per_sec\": {:.1}",
            self.batched_parallel.faults_per_sec
        ));
        if let Some(speedup) = self.speedup_serial() {
            fields.push(format!("\"speedup_serial\": {speedup:.2}"));
        }
        if let Some(speedup) = self.speedup_parallel() {
            fields.push(format!("\"speedup_parallel\": {speedup:.2}"));
        }
        if let Some(speedup) = self.speedup_batched() {
            fields.push(format!("\"speedup_batched\": {speedup:.2}"));
        }
        fields.push(format!(
            "\"speedup_batched_vs_kernel\": {:.2}",
            self.speedup_batched_vs_kernel()
        ));
        format!("    {{\n      {}\n    }}", fields.join(",\n      "))
    }
}

/// The packer half of the dense section: total merged-schedule steps the
/// two cohort planners dispatch for the same overlap-heavy population.
/// Deterministic (no timing involved), so the ratio transfers across
/// machines exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackerComparison {
    /// Faults in the overlap-heavy comparison population.
    pub fault_count: usize,
    /// Total merged-schedule steps under the list-order greedy planner.
    pub greedy_schedule_steps: u64,
    /// Total merged-schedule steps under the address-aware packer.
    pub packed_schedule_steps: u64,
}

impl PackerComparison {
    /// Schedule shrink factor of the address-aware packer over the greedy
    /// baseline (`≥ 1` by the packer's pick-best construction).
    pub fn speedup_packed_schedule(&self) -> f64 {
        self.greedy_schedule_steps as f64 / self.packed_schedule_steps as f64
    }
}

/// The dense-population section of the fault-sim benchmark: generated
/// populations at scale versus the 48-fault standard list, plus the
/// packer-vs-greedy schedule comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSweepSection {
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// The single algorithm the section sweeps (dense timing is
    /// per-walk, so one representative algorithm keeps it affordable).
    pub algorithm: String,
    /// Name of the generated population profile.
    pub population: String,
    /// Faults in the generated population.
    pub fault_count: usize,
    /// Faults in the standard comparison list.
    pub standard_fault_count: usize,
    /// Worker threads available to the parallel variant.
    pub threads: usize,
    /// The standard list through the batched backend, serial.
    pub standard: SweepTiming,
    /// The generated population through the batched backend
    /// (address-aware packer), serial.
    pub dense: SweepTiming,
    /// The generated population with threads taking whole cohorts.
    pub dense_parallel: SweepTiming,
    /// The same population in a fixed shuffled order
    /// ([`DENSE_SHUFFLE_SEED`]), serial — the packed-order execution
    /// ablation.
    pub dense_shuffled: SweepTiming,
    /// The same population forced through the boxed `Box<dyn LaneFault>`
    /// escape hatch, serial — the devirtualization ablation.
    pub boxed: SweepTiming,
    /// The packer-vs-greedy schedule comparison on an overlap-heavy
    /// population.
    pub packer: PackerComparison,
}

impl DenseSweepSection {
    /// Dense-population throughput relative to the standard list on the
    /// same walk — the machine-relative metric guarding the acceptance
    /// claim that generated populations sweep within 25 % of the
    /// standard-list rate.
    pub fn speedup_dense_vs_standard(&self) -> f64 {
        self.dense.faults_per_sec / self.standard.faults_per_sec
    }

    /// Shuffled-population throughput relative to the generation-ordered
    /// copy of the same population — machine-relative. Packed-order
    /// execution with the streaming probe/outcome permutation should keep
    /// this near `1.0` (the pre-permutation backend sat around `0.67`);
    /// the committed value is gated so scattered-access regressions fail
    /// CI.
    pub fn speedup_shuffled_vs_ordered(&self) -> f64 {
        self.dense_shuffled.faults_per_sec / self.dense.faults_per_sec
    }

    /// Inline-enum-dispatch throughput relative to the boxed
    /// `Box<dyn LaneFault>` escape hatch on the same population —
    /// machine-relative, `> 1.0` is the devirtualization win the refactor
    /// exists for.
    pub fn speedup_enum_vs_boxed(&self) -> f64 {
        self.dense.faults_per_sec / self.boxed.faults_per_sec
    }

    /// Renders the section as the `dense` member of the sweep JSON.
    fn to_json_entry(&self) -> String {
        let packer = [
            format!("\"fault_count\": {}", self.packer.fault_count),
            format!(
                "\"greedy_schedule_steps\": {}",
                self.packer.greedy_schedule_steps
            ),
            format!(
                "\"packed_schedule_steps\": {}",
                self.packer.packed_schedule_steps
            ),
            format!(
                "\"speedup_packed_schedule\": {:.2}",
                self.packer.speedup_packed_schedule()
            ),
        ];
        let fields = vec![
            format!("\"rows\": {}", self.rows),
            format!("\"cols\": {}", self.cols),
            format!("\"algorithm\": \"{}\"", self.algorithm),
            format!("\"population\": \"{}\"", self.population),
            format!("\"fault_count\": {}", self.fault_count),
            format!("\"standard_fault_count\": {}", self.standard_fault_count),
            format!("\"threads\": {}", self.threads),
            format!(
                "\"standard_batched_faults_per_sec\": {:.1}",
                self.standard.faults_per_sec
            ),
            format!(
                "\"dense_batched_faults_per_sec\": {:.1}",
                self.dense.faults_per_sec
            ),
            format!(
                "\"dense_batched_parallel_faults_per_sec\": {:.1}",
                self.dense_parallel.faults_per_sec
            ),
            format!(
                "\"dense_shuffled_batched_faults_per_sec\": {:.1}",
                self.dense_shuffled.faults_per_sec
            ),
            format!(
                "\"boxed_dispatch_batched_faults_per_sec\": {:.1}",
                self.boxed.faults_per_sec
            ),
            format!(
                "\"speedup_dense_vs_standard\": {:.3}",
                self.speedup_dense_vs_standard()
            ),
            format!(
                "\"speedup_shuffled_vs_ordered\": {:.3}",
                self.speedup_shuffled_vs_ordered()
            ),
            format!(
                "\"speedup_enum_vs_boxed\": {:.3}",
                self.speedup_enum_vs_boxed()
            ),
            format!("\"packer\": {{\n      {}\n    }}", packer.join(",\n      ")),
        ];
        format!("  {{\n    {}\n  }}", fields.join(",\n    "))
    }
}

/// Measures the dense-population section on a `rows` × `cols` array with
/// a generated population of (at least) `fault_count` faults.
///
/// The generated population rides the batched backend only — the
/// per-fault golden path at 1024×1024 would take minutes per pass — so
/// correctness is gated in two layers before timing: the address-aware
/// and list-order planners (serial and parallel) must produce identical
/// reports on the *full* population, and a scaled-down replica of the
/// profile must match the per-fault golden path exactly on a small array
/// (the randomized differential harness in `crates/march` covers the
/// remaining space seed by seed).
///
/// # Panics
///
/// Panics if the organization is invalid or any equivalence gate fails.
pub fn dense_sweep(rows: u32, cols: u32, fault_count: usize, passes: usize) -> DenseSweepSection {
    let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
    let order = march_test::address_order::WordLineAfterWordLine;
    let test = library::march_ss();
    let walk = MarchWalk::new(&test, &order, &organization);
    let standard = march_test::faults::standard_fault_list(&organization);
    let population = FaultGen::new(organization, DENSE_POPULATION_SEED).dense_profile(fault_count);

    // The shuffled ablation: the same population (FaultGen is
    // deterministic in (organization, seed, profile)), reordered by a
    // fixed permutation the equivalence gate below can invert.
    let mut perm: Vec<usize> = (0..population.len()).collect();
    SplitMix64::new(DENSE_SHUFFLE_SEED).shuffle(&mut perm);
    let mut slots: Vec<Option<FaultFactory>> = FaultGen::new(organization, DENSE_POPULATION_SEED)
        .dense_profile(fault_count)
        .factories
        .into_iter()
        .map(Some)
        .collect();
    let shuffled: Vec<FaultFactory> = perm
        .iter()
        .map(|&index| slots[index].take().expect("perm is a permutation"))
        .collect();
    drop(slots);

    // The boxed-dispatch ablation: the same population, every fault
    // wrapped so only the Box<dyn LaneFault> escape hatch is visible.
    let boxed: Vec<FaultFactory> = FaultGen::new(organization, DENSE_POPULATION_SEED)
        .dense_profile(fault_count)
        .factories
        .into_iter()
        .map(|factory| {
            let wrapped: FaultFactory =
                Box::new(move || Box::new(BoxedDispatch(factory())) as Box<dyn Fault>);
            wrapped
        })
        .collect();

    let serial_options = SweepOptions {
        background: false,
        mode: DetectionMode::FirstMismatch,
        parallel: false,
        backend: SweepBackend::LaneBatched,
    };
    let greedy_options = SweepOptions {
        backend: SweepBackend::LaneBatchedListOrder,
        ..serial_options
    };
    let parallel_options = SweepOptions {
        parallel: true,
        ..serial_options
    };

    // Equivalence gates (see the function docs), scoped so their
    // reports drop before anything is timed: a 100k-outcome report held
    // across the timing loops (tens of MB of small heap objects) pushes
    // every subsequent sweep's allocations into fresh arena space and
    // measurably slows the dense passes.
    {
        let packed_report = evaluate_coverage_on_walk(&walk, &population, serial_options);
        for options in [greedy_options, parallel_options] {
            let other = evaluate_coverage_on_walk(&walk, &population, options);
            assert_eq!(
                packed_report, other,
                "dense sweep variants diverged ({options:?})"
            );
        }
        // The boxed-dispatch replica must reproduce the inline-enum
        // report outcome for outcome (the wrapper delegates names, so
        // reports are comparable directly)…
        let boxed_report = evaluate_coverage_on_walk(&walk, &boxed, serial_options);
        assert_eq!(
            packed_report.outcomes(),
            boxed_report.outcomes(),
            "boxed-dispatch sweep diverged from the inline-enum sweep"
        );
        // …and the shuffled copy must be exactly the ordered report seen
        // through the permutation.
        let shuffled_report = evaluate_coverage_on_walk(&walk, &shuffled, serial_options);
        assert_eq!(shuffled_report.total(), packed_report.total());
        for (position, outcome) in shuffled_report.outcomes().iter().enumerate() {
            assert_eq!(
                outcome,
                &packed_report.outcomes()[perm[position]],
                "shuffled sweep diverged from the ordered one at position {position}"
            );
        }
    }
    {
        let small = ArrayOrganization::new(64, 64).expect("valid organization");
        let small_walk = MarchWalk::new(&test, &order, &small);
        let small_population =
            FaultGen::new(small, DENSE_POPULATION_SEED).dense_profile(fault_count.min(2_000));
        let golden = evaluate_coverage_on_walk(
            &small_walk,
            &small_population,
            SweepOptions {
                backend: SweepBackend::PerFault,
                ..serial_options
            },
        );
        for backend in [
            SweepBackend::LaneBatched,
            SweepBackend::LaneBatchedListOrder,
        ] {
            let batched = evaluate_coverage_on_walk(
                &small_walk,
                &small_population,
                SweepOptions {
                    backend,
                    ..serial_options
                },
            );
            assert_eq!(
                golden, batched,
                "dense profile diverged from the golden path at 64x64 ({backend:?})"
            );
        }
    }

    // The standard list keeps its own tight timing loop: its 48-fault
    // pass is effectively cache-resident there, which is the deliberately
    // harsh yardstick `speedup_dense_vs_standard` has gated since the
    // metric was introduced (inside a rotation it would time cold caches
    // left behind by the 100k-fault variants instead).
    let standard_timing = time_passes(passes, standard.len(), || {
        std::hint::black_box(evaluate_coverage_on_walk(&walk, &standard, serial_options));
    });
    // The four dense-scale variants are timed in one interleaved rotation
    // (see `time_rotation`): the committed dense metrics are ratios
    // between them, and disjoint timing windows would let a burst of
    // runner interference corrupt a ratio that no engine change caused.
    let timings = time_rotation(
        passes,
        &mut [
            (population.len(), &mut || {
                std::hint::black_box(evaluate_coverage_on_walk(
                    &walk,
                    &population,
                    serial_options,
                ));
            }),
            (population.len(), &mut || {
                std::hint::black_box(evaluate_coverage_on_walk(
                    &walk,
                    &population,
                    parallel_options,
                ));
            }),
            (shuffled.len(), &mut || {
                std::hint::black_box(evaluate_coverage_on_walk(&walk, &shuffled, serial_options));
            }),
            (boxed.len(), &mut || {
                std::hint::black_box(evaluate_coverage_on_walk(&walk, &boxed, serial_options));
            }),
        ],
    );
    let [dense_timing, dense_parallel_timing, dense_shuffled_timing, boxed_timing] =
        timings.as_slice()
    else {
        unreachable!("rotation returns one timing per variant");
    };
    let (dense_timing, dense_parallel_timing, dense_shuffled_timing, boxed_timing) = (
        *dense_timing,
        *dense_parallel_timing,
        *dense_shuffled_timing,
        *boxed_timing,
    );

    // The packer comparison runs on an overlap-heavy shuffled population:
    // many faults per victim, scattered through the list — the shape that
    // exposes list-order grouping.
    let mut gen = FaultGen::new(organization, DENSE_POPULATION_SEED ^ 0xFACC);
    let mut overlap = gen.overlapping_clusters((fault_count / 64).max(8), 2, 1);
    gen.shuffle(&mut overlap);
    let greedy_plan = FaultBatch::plan_with(&walk, &overlap, CohortPlanner::ListOrderGreedy);
    let packed_plan = FaultBatch::plan_with(&walk, &overlap, CohortPlanner::AddressAware);
    let packer = PackerComparison {
        fault_count: overlap.len(),
        greedy_schedule_steps: greedy_plan.merged_schedule_steps(),
        packed_schedule_steps: packed_plan.merged_schedule_steps(),
    };

    DenseSweepSection {
        rows,
        cols,
        algorithm: test.name().to_string(),
        population: population.name.clone(),
        fault_count: population.len(),
        standard_fault_count: standard.len(),
        threads: max_threads(),
        standard: standard_timing,
        dense: dense_timing,
        dense_parallel: dense_parallel_timing,
        dense_shuffled: dense_shuffled_timing,
        boxed: boxed_timing,
        packer,
    }
}

/// The campaign-runner overhead section: the same fixed job list timed
/// three ways.
///
/// * **direct** — [`campaign::run_job`] in a plain loop: the raw per-job
///   path, no journal, no worker pool. The overhead-free reference.
/// * **campaign (1 thread)** — [`campaign::run_campaign`] end to end:
///   journal creation, per-job append + flush, export assembly. The
///   ratio against direct (`speedup_campaign_vs_direct`) is
///   machine-relative and carries the tight CI gate: crash-safety is
///   supposed to cost file appends, not throughput.
/// * **campaign (max threads)** — the same campaign with the worker pool
///   fanned across cores; gated only as an absolute rate.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignBenchSection {
    /// Jobs in the fixed benchmark plan.
    pub jobs: usize,
    /// Worker threads available to the parallel variant.
    pub threads: usize,
    /// Jobs per second through the direct `run_job` loop.
    pub direct_jobs_per_sec: f64,
    /// Jobs per second through a single-threaded journaled campaign.
    pub campaign_jobs_per_sec: f64,
    /// Jobs per second through a max-thread journaled campaign.
    pub campaign_parallel_jobs_per_sec: f64,
}

impl CampaignBenchSection {
    /// Single-threaded campaign throughput relative to the direct loop —
    /// machine-relative; near `1.0` means the journal and worker pool are
    /// effectively free at per-job granularity.
    pub fn speedup_campaign_vs_direct(&self) -> f64 {
        self.campaign_jobs_per_sec / self.direct_jobs_per_sec
    }

    /// Renders the section as the `campaign` member of the sweep JSON.
    fn to_json_entry(&self) -> String {
        let fields = [
            format!("\"jobs\": {}", self.jobs),
            format!("\"threads\": {}", self.threads),
            format!("\"direct_jobs_per_sec\": {:.1}", self.direct_jobs_per_sec),
            format!(
                "\"campaign_jobs_per_sec\": {:.1}",
                self.campaign_jobs_per_sec
            ),
            format!(
                "\"campaign_parallel_jobs_per_sec\": {:.1}",
                self.campaign_parallel_jobs_per_sec
            ),
            format!(
                "\"speedup_campaign_vs_direct\": {:.3}",
                self.speedup_campaign_vs_direct()
            ),
        ];
        format!("  {{\n    {}\n  }}", fields.join(",\n    "))
    }
}

/// The fixed campaign benchmark plan: 64×64, four seeds × the paper's
/// Table 1 algorithms, word-line order, a generated mixed population big
/// enough that each job is sweep-dominated (so the gated ratio measures
/// journal overhead against real work, not against nothing).
fn campaign_bench_plan() -> campaign::CampaignPlan {
    let algorithms: Vec<String> = library::table1_algorithms()
        .iter()
        .map(|test| test.name().to_string())
        .collect();
    campaign::CampaignPlan::cross(
        64,
        64,
        &[1, 2, 3, 4],
        &algorithms,
        &["word line after word line".to_string()],
        &[false],
        SweepBackend::LaneBatched,
        campaign::PopulationSpec::Mixed { count: 2048 },
    )
}

/// Measures the campaign-runner overhead section.
///
/// Before any timing, the single-threaded campaign's export digests are
/// asserted identical to the direct loop's — the same determinism
/// contract the fault-injection suite pins, re-checked here so the bench
/// never times two variants that silently diverged.
///
/// # Panics
///
/// Panics if any job fails, any campaign run errors, or the campaign
/// export diverges from the direct results.
pub fn campaign_bench(passes: usize) -> CampaignBenchSection {
    use campaign::{run_campaign, run_job, CampaignOptions, FaultInjector, Shard};

    let plan = campaign_bench_plan();
    let journal =
        std::env::temp_dir().join(format!("campaign-bench-{}.journal", std::process::id()));
    let options = |threads: usize| CampaignOptions {
        threads,
        resume: false,
        ..CampaignOptions::default()
    };

    // Equivalence gate: the journaled campaign must reproduce the direct
    // loop job for job.
    let direct: Vec<_> = plan
        .jobs
        .iter()
        .map(|spec| run_job(spec).expect("direct job"))
        .collect();
    let summary = run_campaign(
        &plan,
        Shard::whole(),
        &journal,
        &options(1),
        &FaultInjector::none(),
    )
    .expect("campaign run");
    assert!(
        summary.poisoned.is_empty(),
        "benchmark jobs must not poison"
    );
    for (outcome, reference) in summary.export.outcomes.iter().zip(&direct) {
        assert_eq!(
            outcome.result, *reference,
            "campaign job {} diverged from the direct loop",
            outcome.job
        );
    }

    // The gated metric is the campaign-vs-direct *ratio*, so the
    // variants rotate inside one measurement span (see [`time_rotation`])
    // — a burst of runner interference lands on all three near-equally
    // instead of corrupting whichever disjoint window it hits.
    let jobs = plan.len();
    let run = |threads: usize| {
        run_campaign(
            &plan,
            Shard::whole(),
            &journal,
            &options(threads),
            &FaultInjector::none(),
        )
        .expect("campaign run");
    };
    let mut direct_pass = || {
        for spec in &plan.jobs {
            run_job(spec).expect("direct job");
        }
    };
    let mut serial_pass = || run(1);
    let mut parallel_pass = || run(max_threads());
    let timings = time_rotation(
        passes,
        &mut [
            (jobs, &mut direct_pass),
            (jobs, &mut serial_pass),
            (jobs, &mut parallel_pass),
        ],
    );
    std::fs::remove_file(&journal).ok();

    CampaignBenchSection {
        jobs,
        threads: max_threads(),
        direct_jobs_per_sec: timings[0].faults_per_sec,
        campaign_jobs_per_sec: timings[1].faults_per_sec,
        campaign_parallel_jobs_per_sec: timings[2].faults_per_sec,
    }
}

/// The unified-scheduler section: outcome assembly for the *same* sweep
/// results timed two ways.
///
/// * **strings** — the classic [`CoverageReport`] shape: three heap
///   strings per fault (the instance name plus fresh copies of the test
///   and order names) in a fat [`FaultSimOutcome`] struct.
/// * **interned** — the scheduler-era [`InternedSweep`] shape: one
///   instance-name string pushed into a shared [`NameTable`] and a
///   16-byte [`OutcomeCode`] per fault.
///
/// Both passes assemble (and drop) a full report from identical
/// pre-swept per-fault results, so the gated
/// `speedup_interned_vs_strings` ratio isolates exactly what the interned
/// report type buys the scheduler's hot outcome path — the sweeps
/// themselves are identical by construction (asserted digest-for-digest
/// before timing).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerBenchSection {
    /// Worker threads the unified pool would run with on this machine.
    pub workers: usize,
    /// Outcomes assembled per pass.
    pub outcomes: usize,
    /// Outcomes per second through the three-strings `CoverageReport`
    /// assembly.
    pub strings_outcomes_per_sec: f64,
    /// Outcomes per second through the interned `OutcomeCode` assembly.
    pub interned_outcomes_per_sec: f64,
}

impl SchedulerBenchSection {
    /// Interned assembly throughput relative to the strings assembly —
    /// machine-relative, carried in the committed JSON and gated by CI.
    pub fn speedup_interned_vs_strings(&self) -> f64 {
        self.interned_outcomes_per_sec / self.strings_outcomes_per_sec
    }

    /// Renders the section as the `scheduler` member of the sweep JSON.
    fn to_json_entry(&self) -> String {
        let fields = [
            format!("\"workers\": {}", self.workers),
            format!("\"outcomes\": {}", self.outcomes),
            format!(
                "\"strings_outcomes_per_sec\": {:.1}",
                self.strings_outcomes_per_sec
            ),
            format!(
                "\"interned_outcomes_per_sec\": {:.1}",
                self.interned_outcomes_per_sec
            ),
            format!(
                "\"speedup_interned_vs_strings\": {:.3}",
                self.speedup_interned_vs_strings()
            ),
        ];
        format!("  {{\n    {}\n  }}", fields.join(",\n    "))
    }
}

/// Measures the unified-scheduler section.
///
/// One sweep runs up front through each report path; the interned
/// report's digest and materialized form are asserted identical to the
/// classic report's (the same bit-identity contract the campaign journal
/// relies on). The timed passes then rebuild each report shape from the
/// pre-instantiated faults and pre-swept results in one interleaved
/// rotation (`time_rotation`, the dense section's scheme), so the
/// committed ratio times outcome assembly and nothing else.
///
/// # Panics
///
/// Panics if the interned sweep diverges from the classic one.
pub fn scheduler_bench(passes: usize) -> SchedulerBenchSection {
    let organization = ArrayOrganization::new(64, 64).expect("valid organization");
    let test = library::march_ss();
    let order = march_test::address_order::WordLineAfterWordLine;
    let walk = MarchWalk::new(&test, &order, &organization);
    let population = FaultGen::new(organization, DENSE_POPULATION_SEED).dense_profile(50_000);
    let options = SweepOptions {
        background: false,
        mode: DetectionMode::FirstMismatch,
        parallel: false,
        backend: SweepBackend::LaneBatched,
    };

    // Equivalence gate: the interned path must be indistinguishable from
    // the classic one before either assembly shape is worth timing.
    let interned = evaluate_coverage_interned_on_walk(&walk, &population, options);
    {
        let classic = evaluate_coverage_on_walk(&walk, &population, options);
        assert_eq!(
            interned.digest(),
            classic.digest(),
            "interned sweep digest diverged from the classic report"
        );
        assert_eq!(
            interned.materialize(),
            classic,
            "interned sweep materialized into a different report"
        );
    }

    // Pre-instantiate the fault boxes and pair them with their swept
    // results: the timed passes measure pure outcome assembly.
    let faults: Vec<Box<dyn Fault>> = population.iter().map(|factory| factory()).collect();
    let results: Vec<(bool, u32)> = interned
        .codes()
        .iter()
        .map(|code| (code.detected, code.mismatches))
        .collect();
    drop(interned);
    let test_name = walk.test_name();
    let order_name = walk.order_name();

    let outcomes = faults.len();
    let mut strings_pass = || {
        let assembled: Vec<FaultSimOutcome> = faults
            .iter()
            .zip(&results)
            .map(|(fault, &(detected, mismatches))| FaultSimOutcome {
                fault_name: fault.name(),
                fault_kind: fault.kind(),
                test_name: test_name.to_string(),
                order_name: order_name.to_string(),
                detected,
                mismatches: mismatches as usize,
            })
            .collect();
        std::hint::black_box(CoverageReport::new(test_name, order_name, assembled));
    };
    let mut interned_pass = || {
        let mut names = NameTable::new();
        let test_id = names.intern(test_name);
        let order_id = names.intern(order_name);
        let codes: Vec<OutcomeCode> = faults
            .iter()
            .zip(&results)
            .map(|(fault, &(detected, mismatches))| OutcomeCode {
                name: names.push(fault.name()),
                kind: fault.kind(),
                detected,
                mismatches,
            })
            .collect();
        std::hint::black_box(InternedSweep::new(test_id, order_id, names, codes));
    };
    let timings = time_rotation(
        passes,
        &mut [
            (outcomes, &mut strings_pass),
            (outcomes, &mut interned_pass),
        ],
    );

    SchedulerBenchSection {
        workers: max_threads(),
        outcomes,
        strings_outcomes_per_sec: timings[0].faults_per_sec,
        interned_outcomes_per_sec: timings[1].faults_per_sec,
    }
}

/// The daemon-intake section: a fixed job stream pushed through the full
/// dynamic-admission path — spool submit (tmp+rename), journal-v2
/// `JobAdded` append with fsync, worker-pool execution, export assembly.
///
/// * **intake** — every pass offers the stream to a fresh spool and runs
///   a single-threaded daemon to quiescence. The committed
///   `intake_jobs_per_sec` is the sustained end-to-end admission rate
///   and gates as an absolute throughput (the "intake suddenly 10x
///   slower" class of failure).
/// * **overload** — the same stream offered against a queue bounded well
///   below it: the daemon must shed the overflow with explicit
///   `queue-full` responses. With one worker and a pre-spooled backlog
///   the shed count is deterministic, so `shed_fraction` is asserted
///   exact at measurement time and committed as documentation of the
///   backpressure contract (it carries no gate suffix — it cannot
///   regress without the assertion failing first).
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonBenchSection {
    /// Jobs offered (and admitted) per intake pass.
    pub jobs: usize,
    /// Submissions offered in the overload pass.
    pub offered: usize,
    /// Queue bound of the overload pass.
    pub queue_limit: usize,
    /// Jobs per second through spool submit + admission + execution +
    /// export, single-threaded.
    pub intake_jobs_per_sec: f64,
    /// Fraction of the overload pass's submissions shed with
    /// `queue-full` — `(offered - queue_limit) / offered` by
    /// construction.
    pub shed_fraction: f64,
}

impl DaemonBenchSection {
    /// Renders the section as the `daemon` member of the sweep JSON.
    fn to_json_entry(&self) -> String {
        let fields = [
            format!("\"jobs\": {}", self.jobs),
            format!("\"offered\": {}", self.offered),
            format!("\"queue_limit\": {}", self.queue_limit),
            format!("\"intake_jobs_per_sec\": {:.1}", self.intake_jobs_per_sec),
            format!("\"shed_fraction\": {:.3}", self.shed_fraction),
        ];
        format!("  {{\n    {}\n  }}", fields.join(",\n    "))
    }
}

/// The daemon benchmark's job stream: small 16×16 jobs so the measured
/// rate is dominated by the intake machinery (spool I/O, fsynced journal
/// appends, queue handoff) rather than by sweep time.
fn daemon_bench_jobs(count: u64) -> Vec<campaign::JobSpec> {
    (1..=count)
        .map(|seed| campaign::JobSpec {
            rows: 16,
            cols: 16,
            seed,
            algorithm: "March C-".to_string(),
            order: "linear".to_string(),
            background: false,
            backend: SweepBackend::LaneBatched,
            population: campaign::PopulationSpec::Mixed { count: 64 },
        })
        .collect()
}

/// Measures the daemon-intake section.
///
/// Before timing, one daemon run's export is asserted byte-identical to
/// `run_campaign` over the same jobs as a static plan — the determinism
/// contract the daemon suite pins, re-checked so the bench never times a
/// path that silently diverged. The overload pass then asserts the exact
/// deterministic shed count before committing its fraction.
///
/// # Panics
///
/// Panics if any run errors, the export diverges from the static plan's,
/// or the overload pass sheds anything but the expected overflow.
pub fn daemon_bench(passes: usize) -> DaemonBenchSection {
    use campaign::{
        run_campaign, run_daemon, CampaignOptions, DaemonOptions, FaultInjector, Shard, SpoolDir,
    };
    use std::sync::atomic::Ordering;

    let jobs = daemon_bench_jobs(24);
    let counter = std::sync::atomic::AtomicU64::new(0);
    let unique = || {
        let n = counter.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("daemon-bench-{}-{n}", std::process::id()))
    };
    let daemon_options = |queue_limit: usize| {
        let options = DaemonOptions {
            threads: 1,
            backoff: Duration::ZERO,
            poll_interval: Duration::ZERO,
            queue_limit,
            ..DaemonOptions::default()
        };
        options.quiesce.store(true, Ordering::SeqCst);
        options
    };
    let run = |spool_dir: &std::path::Path, journal: &std::path::Path, queue_limit: usize| {
        let spool = SpoolDir::open(spool_dir).expect("spool");
        for (index, spec) in jobs.iter().enumerate() {
            spool.submit(&format!("j{index:04}"), spec).expect("submit");
        }
        let summary = run_daemon(
            &spool,
            journal,
            &daemon_options(queue_limit),
            &FaultInjector::none(),
        )
        .expect("daemon run");
        std::fs::remove_dir_all(spool_dir).ok();
        std::fs::remove_file(journal).ok();
        summary
    };

    // Equivalence gate: the dynamic-admission path must reproduce the
    // static campaign byte for byte before it is worth timing.
    let static_journal = unique();
    let static_summary = run_campaign(
        &campaign::CampaignPlan::new(jobs.clone()),
        Shard::whole(),
        &static_journal,
        &CampaignOptions {
            threads: 1,
            ..CampaignOptions::default()
        },
        &FaultInjector::none(),
    )
    .expect("static run");
    std::fs::remove_file(&static_journal).ok();
    let daemon_summary = run(&unique(), &unique(), usize::MAX);
    assert_eq!(
        daemon_summary.export.to_bytes(),
        static_summary.export.to_bytes(),
        "daemon export diverged from the equivalent static plan"
    );

    // Overload pass: one worker, the queue bounded at a third of the
    // stream — the first scan deterministically admits `queue_limit` and
    // sheds the rest with explicit queue-full responses.
    let queue_limit = 8;
    let overload = run(&unique(), &unique(), queue_limit);
    assert_eq!(
        overload.shed,
        jobs.len() - queue_limit,
        "overload pass must shed exactly the overflow"
    );
    let shed_fraction = overload.shed as f64 / jobs.len() as f64;

    // The timed intake passes: full spool + admission + execution cycle
    // per pass, fresh directories each time so dedup never short-circuits.
    let timing = time_passes(passes, jobs.len(), || {
        run(&unique(), &unique(), usize::MAX);
    });

    DaemonBenchSection {
        jobs: jobs.len(),
        offered: jobs.len(),
        queue_limit,
        intake_jobs_per_sec: timing.faults_per_sec,
        shed_fraction,
    }
}

/// The `--organization` sweep: one [`FaultSimThroughput`] per array size,
/// 64×64 up to 1024×1024 by default (the frozen baseline replica runs up
/// to 256×256; larger entries gate on the batched-vs-kernel speedup),
/// plus the optional dense-population section.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimSweep {
    /// One entry per organization, in sweep order.
    pub sizes: Vec<FaultSimThroughput>,
    /// The dense-population section, when measured.
    pub dense: Option<DenseSweepSection>,
    /// The campaign-runner overhead section, when measured.
    pub campaign: Option<CampaignBenchSection>,
    /// The daemon-intake (dynamic admission) section, when measured.
    pub daemon: Option<DaemonBenchSection>,
    /// The unified-scheduler (interned outcome assembly) section, when
    /// measured.
    pub scheduler: Option<SchedulerBenchSection>,
}

impl FaultSimSweep {
    /// Measures every `(rows, cols)` organization in order, without the
    /// dense section.
    ///
    /// # Panics
    ///
    /// Panics if any organization is invalid or any variant diverges from
    /// the baseline (see [`fault_sim_throughput`]).
    pub fn measure(organizations: &[(u32, u32)], passes: usize) -> Self {
        Self::measure_with_dense(organizations, passes, None)
    }

    /// Measures the size sweep and, when `dense` carries
    /// `(rows, cols, fault_count)`, the dense-population section.
    ///
    /// # Panics
    ///
    /// Panics if any organization is invalid or any equivalence gate
    /// fails (see [`fault_sim_throughput`] and [`dense_sweep`]).
    pub fn measure_with_dense(
        organizations: &[(u32, u32)],
        passes: usize,
        dense: Option<(u32, u32, usize)>,
    ) -> Self {
        Self::measure_full(organizations, passes, dense, false, false, false)
    }

    /// Measures the size sweep plus the optional dense, campaign-overhead,
    /// daemon-intake and scheduler sections.
    ///
    /// # Panics
    ///
    /// Panics if any organization is invalid or any equivalence gate
    /// fails (see [`fault_sim_throughput`], [`dense_sweep`],
    /// [`campaign_bench`], [`daemon_bench`] and [`scheduler_bench`]).
    pub fn measure_full(
        organizations: &[(u32, u32)],
        passes: usize,
        dense: Option<(u32, u32, usize)>,
        campaign: bool,
        daemon: bool,
        scheduler: bool,
    ) -> Self {
        // The dense section runs first, on a pristine heap: the size
        // ladder cycles gigabytes of walk arrays, and the fragmented
        // address space it leaves behind measurably slows the
        // large-working-set dense sweep (the compact standard list is
        // unaffected, which would skew the gated ratio).
        let dense =
            dense.map(|(rows, cols, fault_count)| dense_sweep(rows, cols, fault_count, passes));
        // The campaign and scheduler sections' gated metrics are ratios
        // between variants timed back to back, so heap state cancels;
        // they run second, still ahead of the allocation-heavy size
        // ladder.
        let campaign = campaign.then(|| campaign_bench(passes));
        let daemon = daemon.then(|| daemon_bench(passes));
        let scheduler = scheduler.then(|| scheduler_bench(passes));
        Self {
            sizes: organizations
                .iter()
                .map(|&(rows, cols)| fault_sim_throughput(rows, cols, passes))
                .collect(),
            dense,
            campaign,
            daemon,
            scheduler,
        }
    }

    /// Renders the sweep as a JSON object (the workspace is offline and
    /// carries no serde, so the fields are formatted by hand).
    pub fn to_json(&self) -> String {
        let first = self.sizes.first();
        let algorithms = first
            .map(|s| {
                s.algorithms
                    .iter()
                    .map(|name| format!("\"{name}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        let entries = self
            .sizes
            .iter()
            .map(FaultSimThroughput::to_json_entry)
            .collect::<Vec<_>>()
            .join(",\n");
        let dense = self
            .dense
            .as_ref()
            .map(|section| format!(",\n  \"dense\":\n{}", section.to_json_entry()))
            .unwrap_or_default();
        let campaign = self
            .campaign
            .as_ref()
            .map(|section| format!(",\n  \"campaign\":\n{}", section.to_json_entry()))
            .unwrap_or_default();
        let daemon = self
            .daemon
            .as_ref()
            .map(|section| format!(",\n  \"daemon\":\n{}", section.to_json_entry()))
            .unwrap_or_default();
        let scheduler = self
            .scheduler
            .as_ref()
            .map(|section| format!(",\n  \"scheduler\":\n{}", section.to_json_entry()))
            .unwrap_or_default();
        format!(
            "{{\n  \"benchmark\": \"fault_sim_sweep\",\n  \"algorithms\": [{algorithms}],\n  \
             \"passes\": {},\n  \"threads\": {},\n  \"sizes\": [\n{entries}\n  ]{dense}{campaign}{daemon}{scheduler}\n}}\n",
            first.map_or(0, |s| s.passes),
            first.map_or(0, |s| s.threads),
        )
    }
}

/// Fast variants (the batched backend finishes a whole pass in well
/// under a millisecond) would be noise-dominated by a fixed pass count,
/// so pass groups repeat until at least this much wall time has
/// accumulated per variant — the committed speedup metrics stay stable
/// enough for the 25% CI gate.
const MIN_TIMING_SECONDS: f64 = 2.0;

fn time_passes(passes: usize, simulations: usize, mut sweep: impl FnMut()) -> SweepTiming {
    // One warm-up pass keeps lazy page faults and branch-predictor state
    // out of the measurement.
    sweep();
    let mut executed = 0usize;
    let start = Instant::now();
    loop {
        for _ in 0..passes {
            sweep();
        }
        executed += passes;
        if start.elapsed().as_secs_f64() >= MIN_TIMING_SECONDS {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    SweepTiming {
        seconds,
        faults_per_sec: (executed * simulations) as f64 / seconds,
    }
}

/// Times several sweep variants in rotation inside **one** measurement
/// span: every round runs one pass of each variant, separately clocked,
/// until each variant has accumulated [`MIN_TIMING_SECONDS`].
///
/// The dense section's committed metrics are *ratios between variants*
/// (`speedup_dense_vs_standard`, `speedup_shuffled_vs_ordered`,
/// `speedup_enum_vs_boxed`). Measured in disjoint windows — as
/// [`time_passes`] would — a burst of runner interference (CPU steal on
/// shared CI hardware) lands in one variant's window and corrupts the
/// ratio even though neither engine changed. Interleaving spreads any
/// such burst across all variants near-equally, so the ratios cancel the
/// common-mode noise and only genuine engine regressions move them.
fn time_rotation(passes: usize, variants: &mut [(usize, &mut dyn FnMut())]) -> Vec<SweepTiming> {
    for (_, sweep) in variants.iter_mut() {
        sweep(); // Warm-up, as in `time_passes`.
    }
    let mut executed = 0usize;
    let mut seconds = vec![0.0f64; variants.len()];
    loop {
        for _ in 0..passes {
            for (slot, (_, sweep)) in variants.iter_mut().enumerate() {
                let clock = Instant::now();
                sweep();
                seconds[slot] += clock.elapsed().as_secs_f64();
            }
        }
        executed += passes;
        // Every variant must reach the floor: stopping on *total* wall
        // time would let one slow variant starve the others' windows.
        if seconds.iter().all(|&s| s >= MIN_TIMING_SECONDS) {
            break;
        }
    }
    variants
        .iter()
        .zip(&seconds)
        .map(|(&(simulations, _), &elapsed)| SweepTiming {
            seconds: elapsed,
            faults_per_sec: (executed * simulations) as f64 / elapsed,
        })
        .collect()
}

/// Measures baseline vs. per-fault-kernel vs. lane-batched throughput for
/// the standard fault list × Table 1 algorithms on a `rows` × `cols`
/// array, running `passes` timed passes per variant. The frozen seed
/// baseline is skipped above [`BASELINE_CELL_CAP`] cells.
///
/// Before timing, the variants' coverage reports are checked to detect
/// exactly the same fault sets — a benchmark of diverging sweeps would be
/// meaningless. The batched reports must be *identical* to the per-fault
/// kernel's, outcome by outcome.
///
/// # Panics
///
/// Panics if `rows * cols` is not a valid organization or any variant
/// diverges.
pub fn fault_sim_throughput(rows: u32, cols: u32, passes: usize) -> FaultSimThroughput {
    let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
    let order = march_test::address_order::WordLineAfterWordLine;
    let faults = march_test::faults::standard_fault_list(&organization);
    let tests = library::table1_algorithms();
    let walks: Vec<MarchWalk> = tests
        .iter()
        .map(|test| MarchWalk::new(test, &order, &organization))
        .collect();

    let serial_options = SweepOptions {
        background: false,
        mode: DetectionMode::FirstMismatch,
        parallel: false,
        backend: SweepBackend::PerFault,
    };
    let parallel_options = SweepOptions {
        parallel: true,
        ..serial_options
    };
    let batched_options = SweepOptions {
        backend: SweepBackend::LaneBatched,
        ..serial_options
    };
    let batched_parallel_options = SweepOptions::fast();
    let measure_baseline = organization.capacity() <= BASELINE_CELL_CAP;

    // Equivalence gate: every variant must detect the same fault sets,
    // and the batched backend must reproduce the per-fault kernel's
    // reports outcome by outcome.
    for (test, walk) in tests.iter().zip(&walks) {
        let serial = evaluate_coverage_on_walk(walk, &faults, serial_options);
        if measure_baseline {
            let expected = baseline_evaluate_coverage(test, &order, &organization, &faults);
            assert_eq!(
                expected.detected_fault_names(),
                serial.detected_fault_names(),
                "{}: serial kernel diverged from the baseline",
                test.name()
            );
        }
        let parallel = evaluate_coverage_on_walk(walk, &faults, parallel_options);
        assert_eq!(
            serial,
            parallel,
            "{}: parallel sweep diverged from the serial one",
            test.name()
        );
        let batched = evaluate_coverage_on_walk(walk, &faults, batched_options);
        assert_eq!(
            serial,
            batched,
            "{}: lane-batched sweep diverged from the per-fault kernel",
            test.name()
        );
        let batched_parallel = evaluate_coverage_on_walk(walk, &faults, batched_parallel_options);
        assert_eq!(
            batched,
            batched_parallel,
            "{}: parallel batched sweep diverged from the serial one",
            test.name()
        );
    }

    let simulations = tests.len() * faults.len();
    let baseline = measure_baseline.then(|| {
        time_passes(passes, simulations, || {
            for test in &tests {
                std::hint::black_box(baseline_evaluate_coverage(
                    test,
                    &order,
                    &organization,
                    &faults,
                ));
            }
        })
    });
    let time_variant = |options: SweepOptions| {
        time_passes(passes, simulations, || {
            for walk in &walks {
                std::hint::black_box(evaluate_coverage_on_walk(walk, &faults, options));
            }
        })
    };
    let kernel_serial = time_variant(serial_options);
    let kernel_parallel = time_variant(parallel_options);
    let batched = time_variant(batched_options);
    let batched_parallel = time_variant(batched_parallel_options);

    FaultSimThroughput {
        rows,
        cols,
        algorithms: tests.iter().map(|t| t.name().to_string()).collect(),
        fault_count: faults.len(),
        simulations_per_pass: simulations,
        passes,
        threads: max_threads(),
        baseline,
        kernel_serial,
        kernel_parallel,
        batched,
        batched_parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::address_order::WordLineAfterWordLine;
    use march_test::coverage::evaluate_coverage;
    use march_test::faults::standard_fault_list;

    #[test]
    fn baseline_sweep_matches_the_kernel_sweep_exactly() {
        let organization = ArrayOrganization::new(4, 8).unwrap();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let baseline =
                baseline_evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            let kernel = evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            // Full-fidelity kernel mode reproduces even the mismatch counts.
            assert_eq!(baseline, kernel, "{}", test.name());
        }
    }

    #[test]
    fn throughput_experiment_runs_and_reports_consistent_numbers() {
        let sweep = FaultSimSweep::measure(&[(4, 8)], 1);
        assert_eq!(sweep.sizes.len(), 1);
        let result = &sweep.sizes[0];
        assert_eq!(result.algorithms.len(), 5);
        assert_eq!(
            result.simulations_per_pass,
            result.algorithms.len() * result.fault_count
        );
        assert!(!result.baseline_skipped(), "4x8 is far below the cap");
        assert!(result.baseline.unwrap().faults_per_sec > 0.0);
        assert!(result.kernel_serial.faults_per_sec > 0.0);
        assert!(result.kernel_parallel.faults_per_sec > 0.0);
        assert!(result.batched.faults_per_sec > 0.0);
        assert!(result.batched_parallel.faults_per_sec > 0.0);
        assert!(result.speedup_serial().is_some());
        assert!(result.speedup_batched().is_some());
        assert!(result.speedup_batched_vs_kernel() > 0.0);
        let json = sweep.to_json();
        assert!(json.contains("\"benchmark\": \"fault_sim_sweep\""));
        assert!(json.contains("\"baseline_skipped\": false"));
        assert!(json.contains("\"speedup_serial\""));
        assert!(json.contains("\"batched_faults_per_sec\""));
        assert!(json.contains("\"speedup_batched_vs_kernel\""));
        assert!(json.contains("March C-"));
        assert!(json.contains("\"sizes\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn dense_section_measures_generated_population_and_packer() {
        // A scaled-down dense section: the structure and JSON schema are
        // what matter here, the 1024x1024/100k acceptance numbers live in
        // the committed BENCH_fault_sim.json.
        let section = dense_sweep(32, 32, 600, 1);
        assert_eq!(section.algorithm, "March SS");
        assert!(section.fault_count >= 600);
        assert_eq!(section.standard_fault_count, 48);
        assert!(section.population.starts_with("dense-"));
        assert!(section.standard.faults_per_sec > 0.0);
        assert!(section.dense.faults_per_sec > 0.0);
        assert!(section.dense_parallel.faults_per_sec > 0.0);
        assert!(section.dense_shuffled.faults_per_sec > 0.0);
        assert!(section.boxed.faults_per_sec > 0.0);
        assert!(section.speedup_dense_vs_standard() > 0.0);
        assert!(section.speedup_shuffled_vs_ordered() > 0.0);
        assert!(section.speedup_enum_vs_boxed() > 0.0);
        assert!(
            section.packer.speedup_packed_schedule() >= 1.0,
            "the packer is never worse than greedy"
        );
        assert!(section.packer.packed_schedule_steps > 0);
        let sweep = FaultSimSweep {
            sizes: vec![],
            dense: Some(section),
            campaign: None,
            daemon: None,
            scheduler: None,
        };
        let json = sweep.to_json();
        assert!(json.contains("\"dense\":"));
        assert!(json.contains("\"threads\""));
        assert!(json.contains("\"dense_batched_faults_per_sec\""));
        assert!(json.contains("\"standard_batched_faults_per_sec\""));
        assert!(json.contains("\"speedup_dense_vs_standard\""));
        assert!(json.contains("\"dense_shuffled_batched_faults_per_sec\""));
        assert!(json.contains("\"boxed_dispatch_batched_faults_per_sec\""));
        assert!(json.contains("\"speedup_shuffled_vs_ordered\""));
        assert!(json.contains("\"speedup_enum_vs_boxed\""));
        assert!(json.contains("\"packer\": {"));
        assert!(json.contains("\"greedy_schedule_steps\""));
        assert!(json.contains("\"speedup_packed_schedule\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn sweep_json_omits_the_dense_section_when_not_measured() {
        let sweep = FaultSimSweep::measure(&[(4, 8)], 1);
        assert!(sweep.dense.is_none());
        assert!(sweep.campaign.is_none());
        assert!(sweep.daemon.is_none());
        assert!(sweep.scheduler.is_none());
        let json = sweep.to_json();
        assert!(!json.contains("\"dense\""));
        assert!(!json.contains("\"campaign\""));
        assert!(!json.contains("\"daemon\""));
        assert!(!json.contains("\"scheduler\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn scheduler_section_renders_its_gated_fields() {
        let section = SchedulerBenchSection {
            workers: 4,
            outcomes: 50_000,
            strings_outcomes_per_sec: 1_000_000.0,
            interned_outcomes_per_sec: 2_000_000.0,
        };
        assert!((section.speedup_interned_vs_strings() - 2.0).abs() < 1e-12);
        let sweep = FaultSimSweep {
            sizes: vec![],
            dense: None,
            campaign: None,
            daemon: None,
            scheduler: Some(section),
        };
        let json = sweep.to_json();
        assert!(json.contains("\"scheduler\":"));
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"outcomes\": 50000"));
        assert!(json.contains("\"strings_outcomes_per_sec\": 1000000.0"));
        assert!(json.contains("\"interned_outcomes_per_sec\": 2000000.0"));
        assert!(json.contains("\"speedup_interned_vs_strings\": 2.000"));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn campaign_section_renders_its_gated_fields() {
        let section = CampaignBenchSection {
            jobs: 20,
            threads: 4,
            direct_jobs_per_sec: 100.0,
            campaign_jobs_per_sec: 95.0,
            campaign_parallel_jobs_per_sec: 310.0,
        };
        assert!((section.speedup_campaign_vs_direct() - 0.95).abs() < 1e-12);
        let sweep = FaultSimSweep {
            sizes: vec![],
            dense: None,
            campaign: Some(section),
            daemon: None,
            scheduler: None,
        };
        let json = sweep.to_json();
        assert!(json.contains("\"campaign\":"));
        assert!(json.contains("\"direct_jobs_per_sec\": 100.0"));
        assert!(json.contains("\"campaign_jobs_per_sec\": 95.0"));
        assert!(json.contains("\"campaign_parallel_jobs_per_sec\": 310.0"));
        assert!(json.contains("\"speedup_campaign_vs_direct\": 0.950"));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn daemon_section_renders_its_gated_fields() {
        let section = DaemonBenchSection {
            jobs: 24,
            offered: 24,
            queue_limit: 8,
            intake_jobs_per_sec: 512.0,
            shed_fraction: 2.0 / 3.0,
        };
        let sweep = FaultSimSweep {
            sizes: vec![],
            dense: None,
            campaign: None,
            daemon: Some(section),
            scheduler: None,
        };
        let json = sweep.to_json();
        assert!(json.contains("\"daemon\":"));
        assert!(json.contains("\"jobs\": 24"));
        assert!(json.contains("\"offered\": 24"));
        assert!(json.contains("\"queue_limit\": 8"));
        assert!(json.contains("\"intake_jobs_per_sec\": 512.0"));
        assert!(json.contains("\"shed_fraction\": 0.667"));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn daemon_bench_measures_intake_and_deterministic_shed() {
        // One pass of the real section: the equivalence and overload
        // gates inside `daemon_bench` do the asserting; here the numbers
        // just have to come out sane. (The committed acceptance numbers
        // live in BENCH_fault_sim.json.)
        let section = daemon_bench(1);
        assert_eq!(section.jobs, 24);
        assert_eq!(section.offered, 24);
        assert_eq!(section.queue_limit, 8);
        assert!(section.intake_jobs_per_sec > 0.0);
        let expected = (24.0 - 8.0) / 24.0;
        assert!((section.shed_fraction - expected).abs() < 1e-12);
    }

    #[test]
    fn campaign_bench_plan_is_fixed_and_valid() {
        let plan = campaign_bench_plan();
        assert_eq!(plan.len(), 20, "4 seeds x the Table 1 five");
        plan.validate().expect("the benchmark plan must be valid");
    }

    #[test]
    fn baseline_replica_is_skipped_above_the_cell_cap() {
        // 272×256 = 69632 cells > the 256×256 cap: the frozen baseline
        // must be skipped, its metrics omitted from the JSON, and the
        // batched-vs-kernel speedup still reported.
        let sweep = FaultSimSweep::measure(&[(272, 256)], 1);
        let result = &sweep.sizes[0];
        assert!(result.baseline_skipped());
        assert!(result.baseline.is_none());
        assert_eq!(result.speedup_serial(), None);
        assert_eq!(result.speedup_parallel(), None);
        assert_eq!(result.speedup_batched(), None);
        assert!(result.speedup_batched_vs_kernel() > 0.0);
        let json = sweep.to_json();
        assert!(json.contains("\"baseline_skipped\": true"));
        assert!(!json.contains("\"baseline_faults_per_sec\""));
        assert!(!json.contains("\"speedup_serial\""));
        assert!(json.contains("\"speedup_batched_vs_kernel\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }
}
