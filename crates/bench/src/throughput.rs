//! Fault-simulation throughput measurement.
//!
//! The paper's coverage and degree-of-freedom experiments are exhaustive
//! fault sweeps; this module measures how many fault simulations per
//! second the march kernel sustains and compares it against a frozen
//! replica of the original (pre-kernel) implementation, so the speedup is
//! tracked as a number instead of a claim. The `fault_sim_bench` binary
//! writes the result to `BENCH_fault_sim.json`.
//!
//! The baseline below deliberately preserves the seed's hot-path
//! structure: one fresh memory allocation per fault, address sequences
//! re-materialised per element via `AddressOrder::sequence`, every walk
//! run to completion, strictly serial. The kernel path shares one
//! precomputed [`MarchWalk`] per algorithm, reuses scratch memories,
//! stops at the first mismatch and (in the parallel variant) fans the
//! fault list out across threads. On top of that, the lane-batched
//! backend groups up to sixty-four faults into one walk dispatch
//! (`march_test::batch`); its speedup over the per-fault kernel is the
//! machine-relative metric the CI gate tracks at every size.
//!
//! The frozen baseline replica is *capped* at
//! [`BASELINE_CELL_CAP`] cells (256×256): beyond that it would dominate
//! the sweep's wall time, so larger sizes record `baseline_skipped` and
//! gate only on the batched-vs-kernel speedup — which is what makes the
//! 1024×1024 sweep entries affordable.

use std::time::Instant;

use march_test::address_order::AddressOrder;
use march_test::algorithm::MarchTest;
use march_test::coverage::{evaluate_coverage_on_walk, CoverageReport, SweepBackend, SweepOptions};
use march_test::executor::{MarchWalk, Mismatch};
use march_test::fault_sim::{DetectionMode, FaultSimOutcome};
use march_test::faults::{FaultFactory, FaultyMemory};
use march_test::library;
use march_test::memory::{GoodMemory, MemoryModel};
use march_test::parallel::max_threads;
use sram_model::config::ArrayOrganization;

/// Largest cell count (rows × cols) at which the frozen seed-style
/// baseline replica is still measured: 256×256. Beyond it the reference
/// loop would dominate the sweep's wall time, so those entries set
/// `baseline_skipped` and omit the baseline-relative metrics.
pub const BASELINE_CELL_CAP: u32 = 256 * 256;

/// The seed's March executor, frozen for comparison: re-allocates the
/// address sequence of every element and always runs the walk to the end.
fn baseline_run_march(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    memory: &mut dyn MemoryModel,
) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    for (element_index, element) in test.elements().iter().enumerate() {
        let addresses = order.sequence(organization, element.direction());
        for &address in &addresses {
            for &op in element.ops() {
                if let Some(value) = op.write_value() {
                    memory.write(address, value);
                } else {
                    let expected = op.expected_value().expect("reads have expectations");
                    let observed = memory.read(address);
                    if observed != expected {
                        mismatches.push(Mismatch {
                            element: element_index,
                            address,
                            expected,
                            observed,
                        });
                    }
                }
            }
        }
    }
    mismatches
}

/// The seed's coverage sweep, frozen for comparison: one fresh memory and
/// one full executor run per fault, strictly serial.
pub fn baseline_evaluate_coverage(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
) -> CoverageReport {
    let outcomes = faults
        .iter()
        .map(|factory| {
            let fault = factory();
            let fault_name = fault.name();
            let fault_kind = fault.kind();
            let mut memory =
                FaultyMemory::new(GoodMemory::filled(organization.capacity(), false), fault);
            let mismatches = baseline_run_march(test, order, organization, &mut memory);
            FaultSimOutcome {
                fault_name,
                fault_kind,
                test_name: test.name().to_string(),
                order_name: order.name().to_string(),
                detected: !mismatches.is_empty(),
                mismatches: mismatches.len(),
            }
        })
        .collect();
    CoverageReport::new(test.name(), order.name(), outcomes)
}

/// Seconds and derived rate of one timed sweep variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTiming {
    /// Wall-clock seconds for all passes of the variant.
    pub seconds: f64,
    /// Fault simulations per second.
    pub faults_per_sec: f64,
}

/// The full throughput comparison for one array organization.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimThroughput {
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// Names of the algorithms swept (the paper's Table 1 set).
    pub algorithms: Vec<String>,
    /// Number of faults in the standard list for this organization.
    pub fault_count: usize,
    /// Fault simulations per timed pass (`algorithms × fault_count`).
    pub simulations_per_pass: usize,
    /// Timed passes per variant.
    pub passes: usize,
    /// Worker threads available to the parallel variants.
    pub threads: usize,
    /// The frozen seed-style sweep; `None` above [`BASELINE_CELL_CAP`]
    /// cells, where the reference loop is skipped.
    pub baseline: Option<SweepTiming>,
    /// Shared-walk + packed-memory + early-exit kernel, serial — the PR 1
    /// per-fault kernel the batched backend is gated against.
    pub kernel_serial: SweepTiming,
    /// The same per-fault kernel fanned out across threads.
    pub kernel_parallel: SweepTiming,
    /// The lane-batched backend (≤64 faults per walk dispatch), serial.
    pub batched: SweepTiming,
    /// The lane-batched backend with threads taking whole cohorts.
    pub batched_parallel: SweepTiming,
}

impl FaultSimThroughput {
    /// `true` when the frozen seed-style baseline was skipped for this
    /// size (above [`BASELINE_CELL_CAP`] cells).
    pub fn baseline_skipped(&self) -> bool {
        self.baseline.is_none()
    }

    /// Throughput gain of the serial kernel over the baseline, when the
    /// baseline was measured.
    pub fn speedup_serial(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.kernel_serial.faults_per_sec / baseline.faults_per_sec)
    }

    /// Throughput gain of the parallel kernel over the baseline, when the
    /// baseline was measured.
    pub fn speedup_parallel(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.kernel_parallel.faults_per_sec / baseline.faults_per_sec)
    }

    /// Throughput gain of the serial batched backend over the baseline,
    /// when the baseline was measured.
    pub fn speedup_batched(&self) -> Option<f64> {
        self.baseline
            .map(|baseline| self.batched.faults_per_sec / baseline.faults_per_sec)
    }

    /// Throughput gain of the serial batched backend over the serial
    /// per-fault kernel — the machine-relative metric measured at every
    /// size (including the ones whose baseline replica is skipped).
    pub fn speedup_batched_vs_kernel(&self) -> f64 {
        self.batched.faults_per_sec / self.kernel_serial.faults_per_sec
    }

    /// Throughput gain of the parallel batched backend over the parallel
    /// per-fault kernel. Printed for context but deliberately **not**
    /// written to the gated JSON: the per-fault parallel kernel scales
    /// with the worker count while a five-cohort batched sweep does not,
    /// so the ratio would not transfer between machines with different
    /// core counts (unlike the serial-vs-serial
    /// [`Self::speedup_batched_vs_kernel`], which the gate tracks).
    pub fn speedup_batched_parallel_vs_kernel(&self) -> f64 {
        self.batched_parallel.faults_per_sec / self.kernel_parallel.faults_per_sec
    }

    /// Renders this organization's measurements as one entry of the
    /// sweep's `sizes` array. Baseline-relative fields only appear when
    /// the baseline replica ran (`baseline_skipped` says so explicitly).
    fn to_json_entry(&self) -> String {
        let mut fields = vec![
            format!("\"rows\": {}", self.rows),
            format!("\"cols\": {}", self.cols),
            format!("\"fault_count\": {}", self.fault_count),
            format!("\"simulations_per_pass\": {}", self.simulations_per_pass),
            format!("\"baseline_skipped\": {}", self.baseline_skipped()),
        ];
        if let Some(baseline) = self.baseline {
            fields.push(format!(
                "\"baseline_faults_per_sec\": {:.1}",
                baseline.faults_per_sec
            ));
        }
        fields.push(format!(
            "\"kernel_serial_faults_per_sec\": {:.1}",
            self.kernel_serial.faults_per_sec
        ));
        fields.push(format!(
            "\"kernel_parallel_faults_per_sec\": {:.1}",
            self.kernel_parallel.faults_per_sec
        ));
        fields.push(format!(
            "\"batched_faults_per_sec\": {:.1}",
            self.batched.faults_per_sec
        ));
        fields.push(format!(
            "\"batched_parallel_faults_per_sec\": {:.1}",
            self.batched_parallel.faults_per_sec
        ));
        if let Some(speedup) = self.speedup_serial() {
            fields.push(format!("\"speedup_serial\": {speedup:.2}"));
        }
        if let Some(speedup) = self.speedup_parallel() {
            fields.push(format!("\"speedup_parallel\": {speedup:.2}"));
        }
        if let Some(speedup) = self.speedup_batched() {
            fields.push(format!("\"speedup_batched\": {speedup:.2}"));
        }
        fields.push(format!(
            "\"speedup_batched_vs_kernel\": {:.2}",
            self.speedup_batched_vs_kernel()
        ));
        format!("    {{\n      {}\n    }}", fields.join(",\n      "))
    }
}

/// The `--organization` sweep: one [`FaultSimThroughput`] per array size,
/// 64×64 up to 1024×1024 by default (the frozen baseline replica runs up
/// to 256×256; larger entries gate on the batched-vs-kernel speedup).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimSweep {
    /// One entry per organization, in sweep order.
    pub sizes: Vec<FaultSimThroughput>,
}

impl FaultSimSweep {
    /// Measures every `(rows, cols)` organization in order.
    ///
    /// # Panics
    ///
    /// Panics if any organization is invalid or any variant diverges from
    /// the baseline (see [`fault_sim_throughput`]).
    pub fn measure(organizations: &[(u32, u32)], passes: usize) -> Self {
        Self {
            sizes: organizations
                .iter()
                .map(|&(rows, cols)| fault_sim_throughput(rows, cols, passes))
                .collect(),
        }
    }

    /// Renders the sweep as a JSON object (the workspace is offline and
    /// carries no serde, so the fields are formatted by hand).
    pub fn to_json(&self) -> String {
        let first = self.sizes.first();
        let algorithms = first
            .map(|s| {
                s.algorithms
                    .iter()
                    .map(|name| format!("\"{name}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        let entries = self
            .sizes
            .iter()
            .map(FaultSimThroughput::to_json_entry)
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"fault_sim_sweep\",\n  \"algorithms\": [{algorithms}],\n  \
             \"passes\": {},\n  \"threads\": {},\n  \"sizes\": [\n{entries}\n  ]\n}}\n",
            first.map_or(0, |s| s.passes),
            first.map_or(0, |s| s.threads),
        )
    }
}

fn time_passes(passes: usize, simulations: usize, mut sweep: impl FnMut()) -> SweepTiming {
    // Fast variants (the batched backend finishes a whole pass in well
    // under a millisecond) would be noise-dominated by a fixed pass
    // count, so pass groups repeat until at least this much wall time has
    // accumulated — the committed speedup metrics stay stable enough for
    // the 25% CI gate.
    const MIN_SECONDS: f64 = 1.0;
    // One warm-up pass keeps lazy page faults and branch-predictor state
    // out of the measurement.
    sweep();
    let mut executed = 0usize;
    let start = Instant::now();
    loop {
        for _ in 0..passes {
            sweep();
        }
        executed += passes;
        if start.elapsed().as_secs_f64() >= MIN_SECONDS {
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    SweepTiming {
        seconds,
        faults_per_sec: (executed * simulations) as f64 / seconds,
    }
}

/// Measures baseline vs. per-fault-kernel vs. lane-batched throughput for
/// the standard fault list × Table 1 algorithms on a `rows` × `cols`
/// array, running `passes` timed passes per variant. The frozen seed
/// baseline is skipped above [`BASELINE_CELL_CAP`] cells.
///
/// Before timing, the variants' coverage reports are checked to detect
/// exactly the same fault sets — a benchmark of diverging sweeps would be
/// meaningless. The batched reports must be *identical* to the per-fault
/// kernel's, outcome by outcome.
///
/// # Panics
///
/// Panics if `rows * cols` is not a valid organization or any variant
/// diverges.
pub fn fault_sim_throughput(rows: u32, cols: u32, passes: usize) -> FaultSimThroughput {
    let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
    let order = march_test::address_order::WordLineAfterWordLine;
    let faults = march_test::faults::standard_fault_list(&organization);
    let tests = library::table1_algorithms();
    let walks: Vec<MarchWalk> = tests
        .iter()
        .map(|test| MarchWalk::new(test, &order, &organization))
        .collect();

    let serial_options = SweepOptions {
        background: false,
        mode: DetectionMode::FirstMismatch,
        parallel: false,
        backend: SweepBackend::PerFault,
    };
    let parallel_options = SweepOptions {
        parallel: true,
        ..serial_options
    };
    let batched_options = SweepOptions {
        backend: SweepBackend::LaneBatched,
        ..serial_options
    };
    let batched_parallel_options = SweepOptions::fast();
    let measure_baseline = organization.capacity() <= BASELINE_CELL_CAP;

    // Equivalence gate: every variant must detect the same fault sets,
    // and the batched backend must reproduce the per-fault kernel's
    // reports outcome by outcome.
    for (test, walk) in tests.iter().zip(&walks) {
        let serial = evaluate_coverage_on_walk(walk, &faults, serial_options);
        if measure_baseline {
            let expected = baseline_evaluate_coverage(test, &order, &organization, &faults);
            assert_eq!(
                expected.detected_fault_names(),
                serial.detected_fault_names(),
                "{}: serial kernel diverged from the baseline",
                test.name()
            );
        }
        let parallel = evaluate_coverage_on_walk(walk, &faults, parallel_options);
        assert_eq!(
            serial,
            parallel,
            "{}: parallel sweep diverged from the serial one",
            test.name()
        );
        let batched = evaluate_coverage_on_walk(walk, &faults, batched_options);
        assert_eq!(
            serial,
            batched,
            "{}: lane-batched sweep diverged from the per-fault kernel",
            test.name()
        );
        let batched_parallel = evaluate_coverage_on_walk(walk, &faults, batched_parallel_options);
        assert_eq!(
            batched,
            batched_parallel,
            "{}: parallel batched sweep diverged from the serial one",
            test.name()
        );
    }

    let simulations = tests.len() * faults.len();
    let baseline = measure_baseline.then(|| {
        time_passes(passes, simulations, || {
            for test in &tests {
                std::hint::black_box(baseline_evaluate_coverage(
                    test,
                    &order,
                    &organization,
                    &faults,
                ));
            }
        })
    });
    let time_variant = |options: SweepOptions| {
        time_passes(passes, simulations, || {
            for walk in &walks {
                std::hint::black_box(evaluate_coverage_on_walk(walk, &faults, options));
            }
        })
    };
    let kernel_serial = time_variant(serial_options);
    let kernel_parallel = time_variant(parallel_options);
    let batched = time_variant(batched_options);
    let batched_parallel = time_variant(batched_parallel_options);

    FaultSimThroughput {
        rows,
        cols,
        algorithms: tests.iter().map(|t| t.name().to_string()).collect(),
        fault_count: faults.len(),
        simulations_per_pass: simulations,
        passes,
        threads: max_threads(),
        baseline,
        kernel_serial,
        kernel_parallel,
        batched,
        batched_parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::address_order::WordLineAfterWordLine;
    use march_test::coverage::evaluate_coverage;
    use march_test::faults::standard_fault_list;

    #[test]
    fn baseline_sweep_matches_the_kernel_sweep_exactly() {
        let organization = ArrayOrganization::new(4, 8).unwrap();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let baseline =
                baseline_evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            let kernel = evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            // Full-fidelity kernel mode reproduces even the mismatch counts.
            assert_eq!(baseline, kernel, "{}", test.name());
        }
    }

    #[test]
    fn throughput_experiment_runs_and_reports_consistent_numbers() {
        let sweep = FaultSimSweep::measure(&[(4, 8)], 1);
        assert_eq!(sweep.sizes.len(), 1);
        let result = &sweep.sizes[0];
        assert_eq!(result.algorithms.len(), 5);
        assert_eq!(
            result.simulations_per_pass,
            result.algorithms.len() * result.fault_count
        );
        assert!(!result.baseline_skipped(), "4x8 is far below the cap");
        assert!(result.baseline.unwrap().faults_per_sec > 0.0);
        assert!(result.kernel_serial.faults_per_sec > 0.0);
        assert!(result.kernel_parallel.faults_per_sec > 0.0);
        assert!(result.batched.faults_per_sec > 0.0);
        assert!(result.batched_parallel.faults_per_sec > 0.0);
        assert!(result.speedup_serial().is_some());
        assert!(result.speedup_batched().is_some());
        assert!(result.speedup_batched_vs_kernel() > 0.0);
        let json = sweep.to_json();
        assert!(json.contains("\"benchmark\": \"fault_sim_sweep\""));
        assert!(json.contains("\"baseline_skipped\": false"));
        assert!(json.contains("\"speedup_serial\""));
        assert!(json.contains("\"batched_faults_per_sec\""));
        assert!(json.contains("\"speedup_batched_vs_kernel\""));
        assert!(json.contains("March C-"));
        assert!(json.contains("\"sizes\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }

    #[test]
    fn baseline_replica_is_skipped_above_the_cell_cap() {
        // 272×256 = 69632 cells > the 256×256 cap: the frozen baseline
        // must be skipped, its metrics omitted from the JSON, and the
        // batched-vs-kernel speedup still reported.
        let sweep = FaultSimSweep::measure(&[(272, 256)], 1);
        let result = &sweep.sizes[0];
        assert!(result.baseline_skipped());
        assert!(result.baseline.is_none());
        assert_eq!(result.speedup_serial(), None);
        assert_eq!(result.speedup_parallel(), None);
        assert_eq!(result.speedup_batched(), None);
        assert!(result.speedup_batched_vs_kernel() > 0.0);
        let json = sweep.to_json();
        assert!(json.contains("\"baseline_skipped\": true"));
        assert!(!json.contains("\"baseline_faults_per_sec\""));
        assert!(!json.contains("\"speedup_serial\""));
        assert!(json.contains("\"speedup_batched_vs_kernel\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }
}
