//! Fault-simulation throughput measurement.
//!
//! The paper's coverage and degree-of-freedom experiments are exhaustive
//! fault sweeps; this module measures how many fault simulations per
//! second the march kernel sustains and compares it against a frozen
//! replica of the original (pre-kernel) implementation, so the speedup is
//! tracked as a number instead of a claim. The `fault_sim_bench` binary
//! writes the result to `BENCH_fault_sim.json`.
//!
//! The baseline below deliberately preserves the seed's hot-path
//! structure: one fresh memory allocation per fault, address sequences
//! re-materialised per element via `AddressOrder::sequence`, every walk
//! run to completion, strictly serial. The kernel path shares one
//! precomputed [`MarchWalk`] per algorithm, reuses scratch memories,
//! stops at the first mismatch and (in the parallel variant) fans the
//! fault list out across threads.

use std::time::Instant;

use march_test::address_order::AddressOrder;
use march_test::algorithm::MarchTest;
use march_test::coverage::{evaluate_coverage_on_walk, CoverageReport, SweepOptions};
use march_test::executor::{MarchWalk, Mismatch};
use march_test::fault_sim::{DetectionMode, FaultSimOutcome};
use march_test::faults::{FaultFactory, FaultyMemory};
use march_test::library;
use march_test::memory::{GoodMemory, MemoryModel};
use march_test::parallel::max_threads;
use sram_model::config::ArrayOrganization;

/// The seed's March executor, frozen for comparison: re-allocates the
/// address sequence of every element and always runs the walk to the end.
fn baseline_run_march(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    memory: &mut dyn MemoryModel,
) -> Vec<Mismatch> {
    let mut mismatches = Vec::new();
    for (element_index, element) in test.elements().iter().enumerate() {
        let addresses = order.sequence(organization, element.direction());
        for &address in &addresses {
            for &op in element.ops() {
                if let Some(value) = op.write_value() {
                    memory.write(address, value);
                } else {
                    let expected = op.expected_value().expect("reads have expectations");
                    let observed = memory.read(address);
                    if observed != expected {
                        mismatches.push(Mismatch {
                            element: element_index,
                            address,
                            expected,
                            observed,
                        });
                    }
                }
            }
        }
    }
    mismatches
}

/// The seed's coverage sweep, frozen for comparison: one fresh memory and
/// one full executor run per fault, strictly serial.
pub fn baseline_evaluate_coverage(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
) -> CoverageReport {
    let outcomes = faults
        .iter()
        .map(|factory| {
            let fault = factory();
            let fault_name = fault.name();
            let fault_kind = fault.kind();
            let mut memory =
                FaultyMemory::new(GoodMemory::filled(organization.capacity(), false), fault);
            let mismatches = baseline_run_march(test, order, organization, &mut memory);
            FaultSimOutcome {
                fault_name,
                fault_kind,
                test_name: test.name().to_string(),
                order_name: order.name().to_string(),
                detected: !mismatches.is_empty(),
                mismatches: mismatches.len(),
            }
        })
        .collect();
    CoverageReport::new(test.name(), order.name(), outcomes)
}

/// Seconds and derived rate of one timed sweep variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepTiming {
    /// Wall-clock seconds for all passes of the variant.
    pub seconds: f64,
    /// Fault simulations per second.
    pub faults_per_sec: f64,
}

/// The full throughput comparison for one array organization.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimThroughput {
    /// Array rows.
    pub rows: u32,
    /// Array columns.
    pub cols: u32,
    /// Names of the algorithms swept (the paper's Table 1 set).
    pub algorithms: Vec<String>,
    /// Number of faults in the standard list for this organization.
    pub fault_count: usize,
    /// Fault simulations per timed pass (`algorithms × fault_count`).
    pub simulations_per_pass: usize,
    /// Timed passes per variant.
    pub passes: usize,
    /// Worker threads available to the parallel variant.
    pub threads: usize,
    /// The frozen seed-style sweep.
    pub baseline: SweepTiming,
    /// Shared-walk + packed-memory + early-exit kernel, serial.
    pub kernel_serial: SweepTiming,
    /// The same kernel fanned out across threads.
    pub kernel_parallel: SweepTiming,
}

impl FaultSimThroughput {
    /// Throughput gain of the serial kernel over the baseline.
    pub fn speedup_serial(&self) -> f64 {
        self.kernel_serial.faults_per_sec / self.baseline.faults_per_sec
    }

    /// Throughput gain of the parallel kernel over the baseline.
    pub fn speedup_parallel(&self) -> f64 {
        self.kernel_parallel.faults_per_sec / self.baseline.faults_per_sec
    }

    /// Renders this organization's measurements as one entry of the
    /// sweep's `sizes` array.
    fn to_json_entry(&self) -> String {
        format!(
            "    {{\n      \"rows\": {},\n      \"cols\": {},\n      \"fault_count\": {},\n      \
             \"simulations_per_pass\": {},\n      \
             \"baseline_faults_per_sec\": {:.1},\n      \
             \"kernel_serial_faults_per_sec\": {:.1},\n      \
             \"kernel_parallel_faults_per_sec\": {:.1},\n      \
             \"speedup_serial\": {:.2},\n      \"speedup_parallel\": {:.2}\n    }}",
            self.rows,
            self.cols,
            self.fault_count,
            self.simulations_per_pass,
            self.baseline.faults_per_sec,
            self.kernel_serial.faults_per_sec,
            self.kernel_parallel.faults_per_sec,
            self.speedup_serial(),
            self.speedup_parallel(),
        )
    }
}

/// The `--organization` sweep: one [`FaultSimThroughput`] per array size,
/// 64×64 up to 512×512 by default.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimSweep {
    /// One entry per organization, in sweep order.
    pub sizes: Vec<FaultSimThroughput>,
}

impl FaultSimSweep {
    /// Measures every `(rows, cols)` organization in order.
    ///
    /// # Panics
    ///
    /// Panics if any organization is invalid or any variant diverges from
    /// the baseline (see [`fault_sim_throughput`]).
    pub fn measure(organizations: &[(u32, u32)], passes: usize) -> Self {
        Self {
            sizes: organizations
                .iter()
                .map(|&(rows, cols)| fault_sim_throughput(rows, cols, passes))
                .collect(),
        }
    }

    /// Renders the sweep as a JSON object (the workspace is offline and
    /// carries no serde, so the fields are formatted by hand).
    pub fn to_json(&self) -> String {
        let first = self.sizes.first();
        let algorithms = first
            .map(|s| {
                s.algorithms
                    .iter()
                    .map(|name| format!("\"{name}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_default();
        let entries = self
            .sizes
            .iter()
            .map(FaultSimThroughput::to_json_entry)
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"fault_sim_sweep\",\n  \"algorithms\": [{algorithms}],\n  \
             \"passes\": {},\n  \"threads\": {},\n  \"sizes\": [\n{entries}\n  ]\n}}\n",
            first.map_or(0, |s| s.passes),
            first.map_or(0, |s| s.threads),
        )
    }
}

fn time_passes(passes: usize, simulations: usize, mut sweep: impl FnMut()) -> SweepTiming {
    // One warm-up pass keeps lazy page faults and branch-predictor state
    // out of the measurement.
    sweep();
    let start = Instant::now();
    for _ in 0..passes {
        sweep();
    }
    let seconds = start.elapsed().as_secs_f64();
    SweepTiming {
        seconds,
        faults_per_sec: (passes * simulations) as f64 / seconds,
    }
}

/// Measures baseline vs. kernel throughput for the standard fault list ×
/// Table 1 algorithms on a `rows` × `cols` array, running `passes` timed
/// passes per variant.
///
/// Before timing, the three variants' coverage reports are checked to
/// detect exactly the same fault sets — a benchmark of diverging sweeps
/// would be meaningless.
///
/// # Panics
///
/// Panics if `rows * cols` is not a valid organization or the variants
/// disagree on any detected-fault set.
pub fn fault_sim_throughput(rows: u32, cols: u32, passes: usize) -> FaultSimThroughput {
    let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
    let order = march_test::address_order::WordLineAfterWordLine;
    let faults = march_test::faults::standard_fault_list(&organization);
    let tests = library::table1_algorithms();
    let walks: Vec<MarchWalk> = tests
        .iter()
        .map(|test| MarchWalk::new(test, &order, &organization))
        .collect();

    let serial_options = SweepOptions {
        background: false,
        mode: DetectionMode::FirstMismatch,
        parallel: false,
    };
    let parallel_options = SweepOptions::fast();

    // Equivalence gate: every variant must detect the same fault sets.
    for (test, walk) in tests.iter().zip(&walks) {
        let expected = baseline_evaluate_coverage(test, &order, &organization, &faults);
        let serial = evaluate_coverage_on_walk(walk, &faults, serial_options);
        let parallel = evaluate_coverage_on_walk(walk, &faults, parallel_options);
        assert_eq!(
            expected.detected_fault_names(),
            serial.detected_fault_names(),
            "{}: serial kernel diverged from the baseline",
            test.name()
        );
        assert_eq!(
            serial,
            parallel,
            "{}: parallel sweep diverged from the serial one",
            test.name()
        );
    }

    let simulations = tests.len() * faults.len();
    let baseline = time_passes(passes, simulations, || {
        for test in &tests {
            std::hint::black_box(baseline_evaluate_coverage(
                test,
                &order,
                &organization,
                &faults,
            ));
        }
    });
    let kernel_serial = time_passes(passes, simulations, || {
        for walk in &walks {
            std::hint::black_box(evaluate_coverage_on_walk(walk, &faults, serial_options));
        }
    });
    let kernel_parallel = time_passes(passes, simulations, || {
        for walk in &walks {
            std::hint::black_box(evaluate_coverage_on_walk(walk, &faults, parallel_options));
        }
    });

    FaultSimThroughput {
        rows,
        cols,
        algorithms: tests.iter().map(|t| t.name().to_string()).collect(),
        fault_count: faults.len(),
        simulations_per_pass: simulations,
        passes,
        threads: max_threads(),
        baseline,
        kernel_serial,
        kernel_parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::address_order::WordLineAfterWordLine;
    use march_test::coverage::evaluate_coverage;
    use march_test::faults::standard_fault_list;

    #[test]
    fn baseline_sweep_matches_the_kernel_sweep_exactly() {
        let organization = ArrayOrganization::new(4, 8).unwrap();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let baseline =
                baseline_evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            let kernel = evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            // Full-fidelity kernel mode reproduces even the mismatch counts.
            assert_eq!(baseline, kernel, "{}", test.name());
        }
    }

    #[test]
    fn throughput_experiment_runs_and_reports_consistent_numbers() {
        let sweep = FaultSimSweep::measure(&[(4, 8)], 1);
        assert_eq!(sweep.sizes.len(), 1);
        let result = &sweep.sizes[0];
        assert_eq!(result.algorithms.len(), 5);
        assert_eq!(
            result.simulations_per_pass,
            result.algorithms.len() * result.fault_count
        );
        assert!(result.baseline.faults_per_sec > 0.0);
        assert!(result.kernel_serial.faults_per_sec > 0.0);
        assert!(result.kernel_parallel.faults_per_sec > 0.0);
        let json = sweep.to_json();
        assert!(json.contains("\"benchmark\": \"fault_sim_sweep\""));
        assert!(json.contains("\"speedup_serial\""));
        assert!(json.contains("March C-"));
        assert!(json.contains("\"sizes\""));
        crate::json::parse(&json).expect("sweep JSON parses");
    }
}
