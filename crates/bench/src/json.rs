//! A minimal JSON reader for the benchmark baselines.
//!
//! The workspace is offline and carries no serde, and the only JSON the
//! tooling ever reads is the well-formed output of its own benchmark
//! writers (`BENCH_fault_sim.json`, `BENCH_power_engine.json`). This is a
//! small recursive-descent parser over exactly the JSON subset those
//! writers emit: objects, arrays, strings (no escapes beyond `\"` and
//! `\\`), numbers, booleans and `null`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key, or `None` for other values / missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(value) => Some(value),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed
/// input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_whitespace(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    // Bytes are collected raw and decoded once: the input is a valid
    // `&str` and the delimiters are ASCII, so multi-byte UTF-8 sequences
    // pass through intact.
    let mut out = Vec::new();
    while let Some(&byte) = bytes.get(*pos) {
        *pos += 1;
        match byte {
            b'"' => {
                return String::from_utf8(out).map_err(|e| format!("invalid UTF-8: {e}"));
            }
            b'\\' => match bytes.get(*pos) {
                Some(&b'"') => {
                    out.push(b'"');
                    *pos += 1;
                }
                Some(&b'\\') => {
                    out.push(b'\\');
                    *pos += 1;
                }
                _ => return Err(format!("unsupported escape at byte {}", *pos)),
            },
            _ => out.push(byte),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while let Some(&byte) = bytes.get(*pos) {
        if byte.is_ascii_digit() || matches!(byte, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_benchmark_shape() {
        let doc = r#"{
  "benchmark": "power_engine",
  "passes": 2,
  "negative": -1.5e-3,
  "flag": true,
  "nothing": null,
  "sizes": [
    { "rows": 64, "cols": 64, "speedup": 12.5 },
    { "rows": 512, "cols": 512, "speedup": 50.0 }
  ]
}"#;
        let value = parse(doc).unwrap();
        assert_eq!(
            value.get("benchmark").unwrap().as_str(),
            Some("power_engine")
        );
        assert_eq!(value.get("passes").unwrap().as_f64(), Some(2.0));
        assert_eq!(value.get("negative").unwrap().as_f64(), Some(-1.5e-3));
        assert_eq!(value.get("flag"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("nothing"), Some(&JsonValue::Null));
        let sizes = value.get("sizes").unwrap().as_array().unwrap();
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes[1].get("speedup").unwrap().as_f64(), Some(50.0));
        assert_eq!(sizes[0].get("missing"), None);
    }

    #[test]
    fn non_ascii_strings_survive_round_trip() {
        let value = parse("{\"name\": \"March ⇑⇓ — 0.13 µm\"}").unwrap();
        assert_eq!(
            value.get("name").unwrap().as_str(),
            Some("March ⇑⇓ — 0.13 µm")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\": 12x3}").is_err());
    }

    #[test]
    fn round_trips_the_real_writers() {
        use crate::throughput::SweepTiming;
        let result = crate::power_engine::PowerEngineThroughput {
            algorithms: vec!["March C-".to_string()],
            passes: 1,
            threads: 4,
            sizes: vec![],
        };
        assert!(parse(&result.to_json()).is_ok());
        let _ = SweepTiming {
            seconds: 1.0,
            faults_per_sec: 2.0,
        };
    }
}
