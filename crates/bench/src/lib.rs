//! Shared experiment harness for the benches and the `repro` binary.
//!
//! Every table and figure of the paper has a generator function here that
//! produces its data from the workspace crates; the Criterion benches time
//! those generators and the `repro` binary prints their output (and the
//! side-by-side comparison with the paper's reported numbers) for
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod power_engine;
pub mod regression;
pub mod throughput;

/// Largest cell count (rows × cols) at which the frozen seed-style
/// baseline replicas are still measured: 256×256. Beyond it the
/// reference loops would dominate the sweeps' wall time, so larger
/// entries set `baseline_skipped`, omit the baseline-relative metrics
/// and gate on machine-relative current-code ratios instead
/// (`speedup_batched_vs_kernel` / `speedup_replay_vs_simulated`). Shared
/// by both benchmarks so their skip semantics can never desynchronize.
pub const BASELINE_CELL_CAP: u32 = 256 * 256;

use lp_precharge::prelude::*;
use lp_precharge::report::reproduce_table1;
use march_test::address_order::{AddressOrder, ColumnMajor, LinearOrder, WordLineAfterWordLine};
use march_test::algorithm::MarchTest;
use march_test::coverage::{evaluate_coverage_with, SweepOptions};
use march_test::dof::verify_order_independence;
use march_test::faults::static_fault_list;
use march_test::library;
use power_model::analytic::AnalyticPowerModel;
use power_model::calibration::CalibratedParameters;
use power_model::report::Table1Row;
use sram_model::config::{ArrayOrganization, SramConfig, TechnologyParams};
use sram_model::error::SramError;
use transient::prelude::*;

/// The paper's full-size experiment configuration (512×512, 0.13 µm).
pub fn paper_config() -> SramConfig {
    SramConfig::paper_default()
}

/// A reduced configuration used by the Criterion benches so that a full
/// `cargo bench` pass stays in the minutes range; the `repro` binary uses
/// [`paper_config`] for the published numbers.
pub fn bench_config() -> SramConfig {
    SramConfig::builder()
        .organization(ArrayOrganization::new(64, 128).expect("static dimensions are valid"))
        .build()
        .expect("default technology is valid")
}

/// Experiment E1 — Table 1: PRR per March algorithm (simulated, analytic
/// and the paper's reference value).
pub fn table1(config: &SramConfig) -> Result<Vec<Table1Row>, SramError> {
    reproduce_table1(config)
}

/// One row of the Figure 2 reproduction: the pre-charge state of the
/// selected and an unselected column in each half of the clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Phase {
    /// Which half of the clock cycle the row describes.
    pub phase: &'static str,
    /// State of the selected column's pre-charge circuit.
    pub selected_column: &'static str,
    /// State of an unselected column's pre-charge circuit (functional
    /// mode).
    pub unselected_functional: &'static str,
    /// State of an uninvolved column's pre-charge circuit (low-power test
    /// mode).
    pub unselected_low_power: &'static str,
}

/// Experiment E2 — Figure 2: the pre-charge action during one clock cycle,
/// derived from the modified control element's truth table.
pub fn fig2_phases() -> Vec<Fig2Phase> {
    let element = PrechargeControlElement::new();
    // Selected column, operation phase: Pr high (off); restore phase: Pr low.
    let selected_op = element.precharge_enabled(ControlInputs {
        lp_test: false,
        pr: true,
        cs_prev: false,
        cs_own: true,
    });
    let selected_restore = element.precharge_enabled(ControlInputs {
        lp_test: false,
        pr: false,
        cs_prev: false,
        cs_own: true,
    });
    // Unselected column, functional mode: Pr low all cycle.
    let unselected_functional = element.precharge_enabled(ControlInputs {
        lp_test: false,
        pr: false,
        cs_prev: false,
        cs_own: false,
    });
    // Uninvolved column, low-power mode: previous column not selected.
    let unselected_lp = element.precharge_enabled(ControlInputs {
        lp_test: true,
        pr: false,
        cs_prev: false,
        cs_own: false,
    });
    let state = |on: bool, label_on: &'static str, label_off: &'static str| {
        if on {
            label_on
        } else {
            label_off
        }
    };
    vec![
        Fig2Phase {
            phase: "first half (operation)",
            selected_column: state(selected_op, "pre-charge ON", "pre-charge OFF — operation"),
            unselected_functional: state(
                unselected_functional,
                "pre-charge ON — RES",
                "pre-charge OFF",
            ),
            unselected_low_power: state(unselected_lp, "pre-charge ON — RES", "pre-charge OFF"),
        },
        Fig2Phase {
            phase: "second half (restoration)",
            selected_column: state(
                selected_restore,
                "pre-charge ON — BL restoration",
                "pre-charge OFF",
            ),
            unselected_functional: state(
                unselected_functional,
                "pre-charge ON — BL restoration",
                "pre-charge OFF",
            ),
            unselected_low_power: state(unselected_lp, "pre-charge ON", "pre-charge OFF"),
        },
    ]
}

/// Experiment E3 — Figure 6: the floating bit-line discharge waveform (one
/// sample per clock cycle) and the number of cycles to cross the logic
/// threshold / reach ground.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Data {
    /// The BL voltage, one sample per clock cycle.
    pub waveform: Waveform,
    /// Cycles until the line crosses the logic threshold.
    pub cycles_to_threshold: f64,
    /// Cycles until the line is (nearly) fully discharged.
    pub cycles_to_ground: f64,
    /// The complementary line's voltage (it stays at `V_DD`).
    pub blb_voltage: Volts,
}

/// Generates the Figure 6 data from the technology parameters.
pub fn fig6_discharge(technology: &TechnologyParams) -> Fig6Data {
    let clock = technology.clock_period;
    let step = technology.floating_discharge_per_cycle();
    let mut waveform = Waveform::new("BL (floating, selected cell stores 0)");
    let mut v = technology.vdd;
    for cycle in 0..=14u32 {
        waveform.push(Seconds(clock.value() * f64::from(cycle)), v);
        v = (v - step).max(Volts::ZERO);
    }
    let cycles_to_threshold = waveform
        .first_crossing(technology.logic_threshold, true)
        .map(|t| t.value() / clock.value())
        .unwrap_or(f64::NAN);
    Fig6Data {
        waveform,
        cycles_to_threshold,
        cycles_to_ground: technology.floating_discharge_cycles(),
        blb_voltage: technology.vdd,
    }
}

/// Experiment E4 — Figure 7: faulty swaps with and without the
/// row-transition restore cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig7Data {
    /// Faulty swaps observed when the restore cycle is disabled.
    pub swaps_without_restore: u64,
    /// Read mismatches observed when the restore cycle is disabled.
    pub mismatches_without_restore: u64,
    /// Faulty swaps observed with the paper's restore cycle.
    pub swaps_with_restore: u64,
    /// Read mismatches observed with the paper's restore cycle.
    pub mismatches_with_restore: u64,
}

/// Generates the Figure 7 data by running March C- on `config` in both
/// scheduler variants with the all-ones data background.
pub fn fig7_row_transition(config: &SramConfig) -> Result<Fig7Data, SramError> {
    let test = library::march_c_minus();
    let without = TestSession::new(*config)
        .with_options(LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        })
        .run_with_background(&test, OperatingMode::LowPowerTest, true)?;
    let with =
        TestSession::new(*config).run_with_background(&test, OperatingMode::LowPowerTest, true)?;
    Ok(Fig7Data {
        swaps_without_restore: without.faulty_swaps,
        mismatches_without_restore: without.read_mismatches,
        swaps_with_restore: with.faulty_swaps,
        mismatches_with_restore: with.read_mismatches,
    })
}

/// Experiment E5 — the Section 5 per-source analysis: the breakdowns of one
/// algorithm in both modes.
pub fn power_breakdowns(
    config: &SramConfig,
    test: &MarchTest,
) -> Result<(SessionOutcome, SessionOutcome), SramError> {
    let session = TestSession::new(*config);
    let functional = session.run(test, OperatingMode::Functional)?;
    let low_power = session.run(test, OperatingMode::LowPowerTest)?;
    Ok((functional, low_power))
}

/// Experiment E6 — the degree-of-freedom check: `(algorithm, guaranteed
/// coverage preserved, coverage under the paper's order)`.
///
/// Runs on the march crate's throughput kernel: shared walks, early-exit
/// detection and a parallel fault sweep ([`SweepOptions::fast`]).
pub fn dof_summary(organization: &ArrayOrganization) -> Vec<(String, bool, f64)> {
    let faults = static_fault_list(organization);
    let orders: Vec<&dyn AddressOrder> = vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder];
    library::table1_algorithms()
        .iter()
        .map(|test| {
            let report = verify_order_independence(test, &orders, organization, &faults);
            let coverage = evaluate_coverage_with(
                test,
                &WordLineAfterWordLine,
                organization,
                &faults,
                SweepOptions::fast(),
            )
            .coverage();
            (
                test.name().to_string(),
                report.guaranteed_coverage_preserved(),
                coverage,
            )
        })
        .collect()
}

/// Experiment E7 — hardware overhead and timing impact of the modified
/// control logic.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadData {
    /// Transistors added per column.
    pub transistors_per_column: u32,
    /// Total transistors added for the configured array.
    pub total_transistors: u64,
    /// Added transistors as a fraction of the cell-array transistors.
    pub area_fraction: f64,
    /// Added pre-charge path delay in picoseconds.
    pub added_delay_ps: f64,
    /// Added delay as a fraction of the clock period.
    pub delay_fraction: f64,
}

/// Generates the E7 data for `config`.
pub fn overhead(config: &SramConfig) -> OverheadData {
    let controller = ModifiedPrechargeController::new(config.organization().cols());
    let timing = TimingImpact::with_defaults(config.technology());
    OverheadData {
        transistors_per_column: PrechargeControlElement::new().transistor_count(),
        total_transistors: controller.total_transistors(),
        area_fraction: controller.area_overhead_fraction(config.organization().rows()),
        added_delay_ps: timing.added_delay.to_picoseconds(),
        delay_fraction: timing.cycle_fraction,
    }
}

/// Ablation A1 — analytic PRR across array organisations for March C-.
pub fn ablation_array_size(technology: &TechnologyParams) -> Vec<(u32, u32, f64)> {
    let test = library::march_c_minus();
    [
        (64u32, 64u32),
        (128, 128),
        (256, 256),
        (512, 256),
        (512, 512),
        (512, 1024),
    ]
    .iter()
    .map(|&(rows, cols)| {
        let organization = ArrayOrganization::new(rows, cols).expect("static sizes are valid");
        let model =
            AnalyticPowerModel::new(CalibratedParameters::derive(technology, &organization));
        (
            rows,
            cols,
            model.power_reduction_ratio(&test, &organization),
        )
    })
    .collect()
}

/// Ablation A2 — sensitivity of the low-power energy to the number of
/// still-stressed cells α (the paper bounds it to 2 < α < 10): the extra
/// energy per cycle relative to the savings, for α in 2..=10.
pub fn ablation_alpha(
    technology: &TechnologyParams,
    organization: &ArrayOrganization,
) -> Vec<(u32, f64)> {
    let pa = technology.res_replenish_energy().value();
    let saved = (organization.cols() as f64 - 2.0) * pa;
    (2..=10u32)
        .map(|alpha| (alpha, (alpha as f64 * pa) / saved))
        .collect()
}

/// Ablation A3 — PRR sensitivity to the write/read energy ratio.
pub fn ablation_read_write_ratio(
    technology: &TechnologyParams,
    organization: &ArrayOrganization,
) -> Vec<(f64, f64)> {
    let test = library::march_c_minus();
    [1.0f64, 1.1, 1.2, 1.4, 1.6, 2.0]
        .iter()
        .map(|&ratio| {
            let mut parameters = CalibratedParameters::derive(technology, organization);
            parameters.pw = transient::units::Joules(parameters.pr.value() * ratio);
            let model = AnalyticPowerModel::new(parameters);
            (ratio, model.power_reduction_ratio(&test, organization))
        })
        .collect()
}

/// Extension A4 — the word-oriented PRR for several word widths.
pub fn word_oriented_sweep(
    technology: &TechnologyParams,
    organization: &ArrayOrganization,
) -> Vec<(u32, f64)> {
    let test = library::march_c_minus();
    let parameters = CalibratedParameters::derive(technology, organization);
    [1u32, 4, 8, 16, 32]
        .iter()
        .map(|&width| {
            let extension = WordOrientedExtension::new(parameters, width);
            (width, extension.power_reduction_ratio(&test, organization))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_phases_match_the_paper_diagram() {
        let phases = fig2_phases();
        assert_eq!(phases.len(), 2);
        assert!(phases[0].selected_column.contains("OFF"));
        assert!(phases[1].selected_column.contains("restoration"));
        assert!(phases[0].unselected_functional.contains("RES"));
        assert!(phases[0].unselected_low_power.contains("OFF"));
    }

    #[test]
    fn fig6_discharge_is_about_nine_cycles() {
        let data = fig6_discharge(&TechnologyParams::default_013um());
        assert!((8.0..10.5).contains(&data.cycles_to_ground));
        assert!(data.cycles_to_threshold < data.cycles_to_ground);
        assert!(data.waveform.len() > 10);
        assert_eq!(data.blb_voltage, Volts(1.6));
    }

    #[test]
    fn fig7_restore_cycle_removes_every_swap() {
        let config = SramConfig::small_for_tests(8, 32).unwrap();
        let data = fig7_row_transition(&config).unwrap();
        assert!(data.swaps_without_restore > 0);
        assert_eq!(data.swaps_with_restore, 0);
        assert_eq!(data.mismatches_with_restore, 0);
    }

    #[test]
    fn dof_summary_reports_all_algorithms_preserved() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        let summary = dof_summary(&organization);
        assert_eq!(summary.len(), 5);
        assert!(summary.iter().all(|(_, preserved, _)| *preserved));
    }

    #[test]
    fn overhead_matches_the_paper_quote() {
        let data = overhead(&paper_config());
        assert_eq!(data.transistors_per_column, 10);
        assert_eq!(data.total_transistors, 5_120);
        assert!(data.delay_fraction < 0.01);
    }

    #[test]
    fn ablations_produce_monotone_trends() {
        let technology = TechnologyParams::default_013um();
        let sizes = ablation_array_size(&technology);
        assert!(sizes.iter().all(|(_, _, prr)| (0.0..1.0).contains(prr)));
        // PRR grows with the column count: compare any two entries whose
        // column counts differ.
        for a in &sizes {
            for b in &sizes {
                if a.1 < b.1 {
                    assert!(a.2 < b.2, "{}x{} vs {}x{}", a.0, a.1, b.0, b.1);
                }
            }
        }
        let organization = ArrayOrganization::paper_512x512();
        let alpha = ablation_alpha(&technology, &organization);
        assert_eq!(alpha.len(), 9);
        assert!(alpha.iter().all(|(_, frac)| *frac < 0.03));
        let words = word_oriented_sweep(&technology, &organization);
        assert!(words.first().unwrap().1 > words.last().unwrap().1);
        let rw = ablation_read_write_ratio(&technology, &organization);
        assert_eq!(rw.len(), 6);
    }
}
