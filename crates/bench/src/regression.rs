//! Benchmark regression gating.
//!
//! The CI workflow reruns the throughput benchmarks on every PR and
//! compares the fresh numbers against the committed `BENCH_*.json`
//! baselines; this module implements the comparison the `bench_check`
//! binary applies.
//!
//! Gated metrics are selected by a schema-agnostic rule so the checker
//! survives benchmark evolution, and they fall into two classes with
//! separate thresholds:
//!
//! * fields starting with `speedup_` are **machine-relative** — kernel
//!   vs. frozen-baseline ratios measured in the same process on the same
//!   machine, so they transfer between the machine that committed the
//!   baseline and the CI runner. They carry the tight gate (25 % by
//!   default): a kernel regression shows up here first.
//! * fields ending in `_per_sec` are **absolute** throughputs; a CI
//!   runner of a different CPU generation can legitimately sit well
//!   below the committed numbers, so they only gate catastrophic
//!   collapses (50 % by default) — the "engine suddenly 10x slower"
//!   class of failure.
//!
//! Fields prefixed `baseline_` are never gated: they measure the frozen
//! seed replica, which is a reference, not a product path — that covers
//! both its raw `baseline_faults_per_sec` throughput and the boolean
//! `baseline_skipped` marker the sweeps write for sizes whose replica is
//! capped out (above 256×256). Unknown and non-numeric fields are
//! tolerated everywhere, so schema evolution (like the lane-batched
//! `batched_*_per_sec` / `speedup_batched_*` family, or the power
//! engine's `speedup_replay_vs_simulated`) gates automatically without
//! checker changes, and sizes whose baseline-relative metrics are absent
//! from the *committed* file are simply not compared for them.
//!
//! The comparison walks the whole document tree: numeric fields are
//! gated at every level, object-valued members (the fault-sim sweep's
//! `dense` section and its nested `packer` comparison) recurse with a
//! scoped metric label, and array entries are matched across files by
//! their `rows`×`cols` pair when they carry one (`sizes`) or by position
//! otherwise. A nested section or entry that carries gated metrics in
//! the committed baseline but is missing from the current measurement
//! fails the gate — dropping the dense sweep must not silently pass CI.

use crate::json::{parse, JsonValue};

/// The two regression thresholds of the gate (fractions of the baseline
/// value a current measurement may drop before failing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateThresholds {
    /// Applied to machine-relative `speedup_*` metrics.
    pub relative: f64,
    /// Applied to absolute `*_per_sec` metrics.
    pub absolute: f64,
}

impl Default for GateThresholds {
    fn default() -> Self {
        Self {
            relative: 0.25,
            absolute: 0.5,
        }
    }
}

/// One gated metric compared between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric label, e.g. `512x512 engine_cycles_per_sec`.
    pub metric: String,
    /// Value in the committed baseline file.
    pub baseline: f64,
    /// Value in the freshly measured file.
    pub current: f64,
}

impl Comparison {
    /// `current / baseline` — below `1 - threshold` is a regression.
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline
        } else {
            1.0
        }
    }
}

/// The outcome of checking one benchmark pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Name of the benchmark (the `benchmark` field of both files).
    pub benchmark: String,
    /// Every gated metric that was compared.
    pub comparisons: Vec<Comparison>,
    /// Human-readable failure descriptions; empty means the gate passes.
    pub failures: Vec<String>,
}

impl RegressionReport {
    /// `true` when no gated metric regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn metric_threshold(name: &str, thresholds: GateThresholds) -> Option<f64> {
    if name.starts_with("baseline_") {
        return None;
    }
    if name.starts_with("speedup_") {
        Some(thresholds.relative)
    } else if name.ends_with("_per_sec") {
        Some(thresholds.absolute)
    } else {
        None
    }
}

fn gated_fields(value: &JsonValue, thresholds: GateThresholds) -> Vec<(String, f64, f64)> {
    match value {
        JsonValue::Object(members) => members
            .iter()
            .filter_map(|(name, value)| {
                let threshold = metric_threshold(name, thresholds)?;
                value.as_f64().map(|v| (name.clone(), v, threshold))
            })
            .collect(),
        _ => Vec::new(),
    }
}

fn size_key(entry: &JsonValue) -> Option<String> {
    let rows = entry.get("rows")?.as_f64()?;
    let cols = entry.get("cols")?.as_f64()?;
    Some(format!("{}x{}", rows as u64, cols as u64))
}

fn join_scope(scope: &str, child: &str) -> String {
    if scope.is_empty() {
        child.to_string()
    } else {
        format!("{scope} {child}")
    }
}

/// `true` when `value` (recursively) carries at least one gated numeric
/// metric — the test for whether a section missing from the current
/// measurement is a gate failure or just an optional annotation.
fn has_gated_fields(value: &JsonValue, thresholds: GateThresholds) -> bool {
    match value {
        JsonValue::Object(members) => members.iter().any(|(name, value)| {
            (metric_threshold(name, thresholds).is_some() && value.as_f64().is_some())
                || has_gated_fields(value, thresholds)
        }),
        JsonValue::Array(entries) => entries
            .iter()
            .any(|entry| has_gated_fields(entry, thresholds)),
        _ => false,
    }
}

fn compare_scope(
    scope: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    thresholds: GateThresholds,
    report: &mut RegressionReport,
) {
    for (name, baseline_value, threshold) in gated_fields(baseline, thresholds) {
        let metric = join_scope(scope, &name);
        let Some(current_value) = current.get(&name).and_then(JsonValue::as_f64) else {
            report
                .failures
                .push(format!("{metric}: missing from the current measurement"));
            continue;
        };
        let comparison = Comparison {
            metric: metric.clone(),
            baseline: baseline_value,
            current: current_value,
        };
        if comparison.ratio() < 1.0 - threshold {
            report.failures.push(format!(
                "{metric}: {current_value:.1} is {:.0}% below the baseline {baseline_value:.1} \
                 (allowed drop {:.0}%)",
                (1.0 - comparison.ratio()) * 100.0,
                threshold * 100.0
            ));
        }
        report.comparisons.push(comparison);
    }
}

/// Recursive comparison of one document subtree: gated numeric fields at
/// this level, then object-valued members (nested sections) and arrays
/// of `rows`×`cols`-keyed entries.
fn compare_tree(
    scope: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    thresholds: GateThresholds,
    report: &mut RegressionReport,
) {
    compare_scope(scope, baseline, current, thresholds, report);
    let JsonValue::Object(members) = baseline else {
        return;
    };
    for (name, value) in members {
        match value {
            JsonValue::Object(_) => {
                let child = join_scope(scope, name);
                match current.get(name) {
                    Some(current_value @ JsonValue::Object(_)) => {
                        compare_tree(&child, value, current_value, thresholds, report);
                    }
                    _ => {
                        if has_gated_fields(value, thresholds) {
                            report.failures.push(format!(
                                "{child}: section missing from the current measurement"
                            ));
                        }
                    }
                }
            }
            JsonValue::Array(entries) => {
                let current_entries = current.get(name).and_then(JsonValue::as_array);
                for (position, entry) in entries.iter().enumerate() {
                    // Sized entries match across files by their
                    // rows×cols key; anything else matches by position,
                    // so gated metrics inside un-keyed arrays are still
                    // compared (and their absence still fails) instead
                    // of being skipped.
                    match size_key(entry) {
                        Some(key) => {
                            let child = join_scope(scope, &key);
                            let matching = current_entries.and_then(|candidates| {
                                candidates
                                    .iter()
                                    .find(|candidate| size_key(candidate).as_deref() == Some(&key))
                            });
                            match matching {
                                Some(current_entry) => {
                                    compare_tree(&child, entry, current_entry, thresholds, report);
                                }
                                None => report.failures.push(format!(
                                    "{child}: size missing from the current measurement"
                                )),
                            }
                        }
                        None => {
                            let child = join_scope(scope, &format!("{name}[{position}]"));
                            match current_entries.and_then(|candidates| candidates.get(position)) {
                                Some(current_entry) => {
                                    compare_tree(&child, entry, current_entry, thresholds, report);
                                }
                                None if has_gated_fields(entry, thresholds) => {
                                    report.failures.push(format!(
                                        "{child}: entry missing from the current measurement"
                                    ));
                                }
                                None => {}
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Compares a freshly measured benchmark JSON against its committed
/// baseline.
///
/// # Errors
///
/// Returns a message when either document is malformed or the two files
/// describe different benchmarks.
pub fn check_benchmarks(
    baseline_text: &str,
    current_text: &str,
    thresholds: GateThresholds,
) -> Result<RegressionReport, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let current = parse(current_text).map_err(|e| format!("current: {e}"))?;

    let baseline_name = baseline
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("baseline: missing \"benchmark\" field")?;
    let current_name = current
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("current: missing \"benchmark\" field")?;
    if baseline_name != current_name {
        return Err(format!(
            "benchmark mismatch: baseline is \"{baseline_name}\", current is \"{current_name}\""
        ));
    }

    let mut report = RegressionReport {
        benchmark: baseline_name.to_string(),
        comparisons: Vec::new(),
        failures: Vec::new(),
    };

    compare_tree("", &baseline, &current, thresholds, &mut report);

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> String {
        r#"{
  "benchmark": "power_engine",
  "threads": 4,
  "sizes": [
    { "rows": 64, "cols": 64,
      "baseline_cycles_per_sec": 100.0, "engine_cycles_per_sec": 1000.0,
      "speedup_table1": 10.0 },
    { "rows": 512, "cols": 512,
      "baseline_cycles_per_sec": 90.0, "engine_cycles_per_sec": 4000.0,
      "speedup_table1": 44.0 }
  ]
}"#
        .to_string()
    }

    #[test]
    fn identical_files_pass() {
        let report = check_benchmarks(&baseline(), &baseline(), GateThresholds::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.benchmark, "power_engine");
        // Two gated metrics per size; the baseline_ replica is not gated.
        assert_eq!(report.comparisons.len(), 4);
        assert!(report
            .comparisons
            .iter()
            .all(|c| !c.metric.contains("baseline_")));
    }

    #[test]
    fn improvements_and_small_dips_pass() {
        let current = baseline()
            .replace(
                "\"engine_cycles_per_sec\": 1000.0",
                "\"engine_cycles_per_sec\": 1500.0",
            )
            // A 20% absolute-throughput dip (runner variance) passes...
            .replace(
                "\"engine_cycles_per_sec\": 4000.0",
                "\"engine_cycles_per_sec\": 3200.0",
            )
            // ...and so does a speedup dip inside the relative threshold.
            .replace("\"speedup_table1\": 44.0", "\"speedup_table1\": 36.0");
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn moderate_absolute_dip_is_absorbed_as_machine_variance() {
        // A 40% drop in raw cycles/sec alone (different CPU generation)
        // stays inside the 50% absolute allowance.
        let current = baseline().replace(
            "\"engine_cycles_per_sec\": 4000.0",
            "\"engine_cycles_per_sec\": 2400.0",
        );
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn synthetic_degradation_fails_the_gate() {
        // A 55% collapse of the absolute throughput at 512x512 must fail.
        let current = baseline().replace(
            "\"engine_cycles_per_sec\": 4000.0",
            "\"engine_cycles_per_sec\": 1800.0",
        );
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("512x512 engine_cycles_per_sec"));
    }

    #[test]
    fn speedup_regression_fails_at_the_tight_threshold() {
        // The machine-relative gate: a 30% speedup drop fails even though
        // the same relative drop in raw throughput would pass.
        let current = baseline().replace("\"speedup_table1\": 44.0", "\"speedup_table1\": 30.8");
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("512x512 speedup_table1"));
    }

    #[test]
    fn slower_frozen_baseline_replica_is_not_a_regression() {
        let current = baseline().replace(
            "\"baseline_cycles_per_sec\": 90.0",
            "\"baseline_cycles_per_sec\": 9.0",
        );
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn missing_sizes_and_metrics_fail() {
        let current = r#"{ "benchmark": "power_engine", "sizes": [
            { "rows": 64, "cols": 64, "engine_cycles_per_sec": 1000.0, "speedup_table1": 10.0 }
        ] }"#;
        let report = check_benchmarks(&baseline(), current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("512x512: size missing")));
    }

    /// A committed fault-sim baseline in the lane-batched schema: the
    /// 64×64 entry carries the full metric set, the 1024×1024 entry has
    /// its frozen seed replica skipped and gates only on the
    /// machine-relative batched-vs-kernel speedups.
    fn batched_baseline() -> String {
        r#"{
  "benchmark": "fault_sim_sweep",
  "threads": 1,
  "sizes": [
    { "rows": 64, "cols": 64,
      "baseline_skipped": false,
      "baseline_faults_per_sec": 2400.0,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_serial": 45.0,
      "speedup_batched_vs_kernel": 8.2 },
    { "rows": 1024, "cols": 1024,
      "baseline_skipped": true,
      "kernel_serial_faults_per_sec": 1500.0,
      "batched_faults_per_sec": 500000.0,
      "speedup_batched_vs_kernel": 330.0 }
  ]
}"#
        .to_string()
    }

    #[test]
    fn batched_schema_gates_and_tolerates_baseline_skipped() {
        let report = check_benchmarks(
            &batched_baseline(),
            &batched_baseline(),
            GateThresholds::default(),
        )
        .unwrap();
        assert!(report.passed());
        // Gated: kernel + batched *_per_sec and the speedup_* family per
        // size. Never gated: the boolean `baseline_skipped`, the frozen
        // `baseline_faults_per_sec` replica and the rows/cols keys.
        assert_eq!(report.comparisons.len(), 7);
        assert!(report
            .comparisons
            .iter()
            .all(|c| !c.metric.contains("baseline_")));
    }

    #[test]
    fn synthetically_degraded_batched_metric_fails_the_gate() {
        // A 40% collapse of the 1024x1024 batched-vs-kernel speedup —
        // the machine-relative metric that carries the sweep's gate once
        // the baseline replica is skipped — must fail at the 25%
        // threshold.
        let current = batched_baseline().replace(
            "\"speedup_batched_vs_kernel\": 330.0",
            "\"speedup_batched_vs_kernel\": 198.0",
        );
        let report =
            check_benchmarks(&batched_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("1024x1024 speedup_batched_vs_kernel"));
    }

    #[test]
    fn unknown_and_non_numeric_fields_are_tolerated() {
        // Boolean, string and null members — plus fields absent from the
        // committed baseline — must neither gate nor fail.
        let current = batched_baseline()
            .replace(
                "\"baseline_skipped\": true,",
                "\"baseline_skipped\": true, \"note\": \"new runner\", \"calibrated\": null,",
            )
            .replace(
                "\"speedup_batched_vs_kernel\": 330.0",
                "\"speedup_batched_vs_kernel\": 330.0, \"speedup_future_metric\": 1.0",
            );
        let report =
            check_benchmarks(&batched_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    /// A committed fault-sim baseline carrying the dense-population
    /// section: generated-vs-standard throughput plus the nested packer
    /// comparison.
    fn dense_baseline() -> String {
        r#"{
  "benchmark": "fault_sim_sweep",
  "threads": 1,
  "sizes": [
    { "rows": 64, "cols": 64,
      "baseline_skipped": false,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_batched_vs_kernel": 8.2 }
  ],
  "dense": {
    "rows": 1024, "cols": 1024,
    "algorithm": "March SS",
    "population": "dense-100032",
    "fault_count": 100032,
    "standard_batched_faults_per_sec": 1300000.0,
    "dense_batched_faults_per_sec": 1170000.0,
    "dense_shuffled_batched_faults_per_sec": 1120000.0,
    "boxed_dispatch_batched_faults_per_sec": 700000.0,
    "speedup_dense_vs_standard": 0.9,
    "speedup_shuffled_vs_ordered": 0.96,
    "speedup_enum_vs_boxed": 1.67,
    "packer": {
      "fault_count": 12500,
      "greedy_schedule_steps": 5000000,
      "packed_schedule_steps": 1250000,
      "speedup_packed_schedule": 4.0
    }
  }
}"#
        .to_string()
    }

    #[test]
    fn dense_section_gates_and_identical_files_pass() {
        let report = check_benchmarks(
            &dense_baseline(),
            &dense_baseline(),
            GateThresholds::default(),
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        // Gated: 3 per-size metrics + 7 dense throughput/ratio metrics +
        // the nested packer ratio. Raw step counts carry no gate suffix.
        assert_eq!(report.comparisons.len(), 11);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "dense speedup_dense_vs_standard"));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "dense speedup_shuffled_vs_ordered"));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "dense speedup_enum_vs_boxed"));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "dense packer speedup_packed_schedule"));
        assert!(!report
            .comparisons
            .iter()
            .any(|c| c.metric.contains("schedule_steps")));
    }

    #[test]
    fn synthetically_degraded_dense_throughput_fails_the_gate() {
        // The dense-vs-standard ratio collapsing from 0.9 to 0.6 (a 33%
        // drop) must fail the 25% machine-relative gate.
        let current = dense_baseline().replace(
            "\"speedup_dense_vs_standard\": 0.9",
            "\"speedup_dense_vs_standard\": 0.6",
        );
        let report =
            check_benchmarks(&dense_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("dense speedup_dense_vs_standard"));
    }

    #[test]
    fn synthetically_degraded_shuffled_order_ratio_fails_the_gate() {
        // The shuffled-vs-ordered ratio collapsing from 0.96 back to the
        // pre-packed-order ~0.67 (a 30% drop) must fail the 25% gate —
        // that is the regression the metric exists to catch.
        let current = dense_baseline().replace(
            "\"speedup_shuffled_vs_ordered\": 0.96",
            "\"speedup_shuffled_vs_ordered\": 0.67",
        );
        let report =
            check_benchmarks(&dense_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("dense speedup_shuffled_vs_ordered"));
    }

    #[test]
    fn synthetically_degraded_enum_dispatch_ratio_fails_the_gate() {
        // Devirtualization regressing (enum no faster than boxed) must
        // fail: 1.67 -> 1.0 is a 40% drop against the 25% threshold.
        let current = dense_baseline().replace(
            "\"speedup_enum_vs_boxed\": 1.67",
            "\"speedup_enum_vs_boxed\": 1.0",
        );
        let report =
            check_benchmarks(&dense_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("dense speedup_enum_vs_boxed"));
    }

    #[test]
    fn synthetically_degraded_packer_ratio_fails_the_gate() {
        // The packer's schedule shrink falling from 4.0x to 2.5x means
        // cohort packing regressed — gated inside the nested section.
        let current = dense_baseline().replace(
            "\"speedup_packed_schedule\": 4.0",
            "\"speedup_packed_schedule\": 2.5",
        );
        let report =
            check_benchmarks(&dense_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("dense packer speedup_packed_schedule"));
    }

    #[test]
    fn raw_schedule_step_counts_are_not_gated() {
        // The absolute step counts may move freely (population resizing);
        // only the ratio is gated.
        let current = dense_baseline()
            .replace(
                "\"greedy_schedule_steps\": 5000000",
                "\"greedy_schedule_steps\": 9000000",
            )
            .replace(
                "\"packed_schedule_steps\": 1250000",
                "\"packed_schedule_steps\": 2250000",
            );
        let report =
            check_benchmarks(&dense_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn missing_dense_section_fails_the_gate() {
        let current = r#"{
  "benchmark": "fault_sim_sweep",
  "sizes": [
    { "rows": 64, "cols": 64,
      "baseline_skipped": false,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_batched_vs_kernel": 8.2 }
  ]
}"#;
        let report =
            check_benchmarks(&dense_baseline(), current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("dense: section missing")));
    }

    /// A committed fault-sim baseline carrying the campaign-runner
    /// overhead section.
    fn campaign_baseline() -> String {
        r#"{
  "benchmark": "fault_sim_sweep",
  "threads": 4,
  "sizes": [
    { "rows": 64, "cols": 64,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_batched_vs_kernel": 8.2 }
  ],
  "campaign": {
    "jobs": 20,
    "threads": 4,
    "direct_jobs_per_sec": 120.0,
    "campaign_jobs_per_sec": 114.0,
    "campaign_parallel_jobs_per_sec": 390.0,
    "speedup_campaign_vs_direct": 0.95
  }
}"#
        .to_string()
    }

    #[test]
    fn campaign_section_gates_and_identical_files_pass() {
        let report = check_benchmarks(
            &campaign_baseline(),
            &campaign_baseline(),
            GateThresholds::default(),
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        // Gated: 3 per-size metrics + the campaign section's three
        // jobs/sec rates and its overhead ratio. `jobs`/`threads` counts
        // carry no gate suffix.
        assert_eq!(report.comparisons.len(), 7);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "campaign speedup_campaign_vs_direct"));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "campaign campaign_jobs_per_sec"));
    }

    #[test]
    fn regressed_campaign_overhead_ratio_fails_the_gate() {
        // Crash-safety overhead ballooning (the journaled campaign
        // dropping to 60% of the direct loop) must fail the 25%
        // machine-relative gate — that is the regression the section
        // exists to catch.
        let current = campaign_baseline().replace(
            "\"speedup_campaign_vs_direct\": 0.95",
            "\"speedup_campaign_vs_direct\": 0.6",
        );
        let report =
            check_benchmarks(&campaign_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("campaign speedup_campaign_vs_direct"));
    }

    #[test]
    fn collapsed_campaign_throughput_fails_the_absolute_gate() {
        // A 60% collapse of the parallel campaign rate (a worker pool
        // that stopped scaling) exceeds the 50% absolute allowance.
        let current = campaign_baseline().replace(
            "\"campaign_parallel_jobs_per_sec\": 390.0",
            "\"campaign_parallel_jobs_per_sec\": 156.0",
        );
        let report =
            check_benchmarks(&campaign_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("campaign campaign_parallel_jobs_per_sec"));
    }

    #[test]
    fn missing_campaign_section_fails_the_gate() {
        let current = r#"{
  "benchmark": "fault_sim_sweep",
  "sizes": [
    { "rows": 64, "cols": 64,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_batched_vs_kernel": 8.2 }
  ]
}"#;
        let report =
            check_benchmarks(&campaign_baseline(), current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("campaign: section missing")));
    }

    /// A committed fault-sim baseline carrying the daemon-intake section.
    fn daemon_baseline() -> String {
        r#"{
  "benchmark": "fault_sim_sweep",
  "threads": 4,
  "sizes": [
    { "rows": 64, "cols": 64,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_batched_vs_kernel": 8.2 }
  ],
  "daemon": {
    "jobs": 24,
    "offered": 24,
    "queue_limit": 8,
    "intake_jobs_per_sec": 450.0,
    "shed_fraction": 0.667
  }
}"#
        .to_string()
    }

    #[test]
    fn daemon_section_gates_its_intake_rate_only() {
        let report = check_benchmarks(
            &daemon_baseline(),
            &daemon_baseline(),
            GateThresholds::default(),
        )
        .unwrap();
        assert!(report.passed(), "{:?}", report.failures);
        // Gated: 3 per-size metrics + the intake rate. The shed fraction
        // and the raw counts carry no gate suffix — shedding is asserted
        // exact at measurement time, not tracked as a drifting metric.
        assert_eq!(report.comparisons.len(), 4);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.metric == "daemon intake_jobs_per_sec"));
        assert!(!report
            .comparisons
            .iter()
            .any(|c| c.metric.contains("shed_fraction")));
    }

    #[test]
    fn collapsed_daemon_intake_rate_fails_the_absolute_gate() {
        // Intake collapsing to 40% of the baseline (an fsync storm, a
        // scan gone quadratic) exceeds the 50% absolute allowance.
        let current = daemon_baseline().replace(
            "\"intake_jobs_per_sec\": 450.0",
            "\"intake_jobs_per_sec\": 180.0",
        );
        let report =
            check_benchmarks(&daemon_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("daemon intake_jobs_per_sec"));
    }

    #[test]
    fn missing_daemon_section_fails_the_gate() {
        let current = r#"{
  "benchmark": "fault_sim_sweep",
  "sizes": [
    { "rows": 64, "cols": 64,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_batched_vs_kernel": 8.2 }
  ]
}"#;
        let report =
            check_benchmarks(&daemon_baseline(), current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("daemon: section missing")));
    }

    #[test]
    fn unknown_nested_sections_without_gated_fields_are_tolerated() {
        // A committed annotation object (no gated metrics inside) absent
        // from the current run must not fail; unknown nested objects in
        // the current run are ignored entirely.
        let baseline = dense_baseline().replace(
            "\"dense\": {",
            "\"notes\": { \"runner\": \"ci\", \"cores\": 4 },\n  \"dense\": {",
        );
        let report =
            check_benchmarks(&baseline, &dense_baseline(), GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn unkeyed_arrays_with_gated_metrics_are_compared_by_position() {
        // Gated metrics inside arrays without rows/cols keys must still
        // gate (matched positionally) — and a degraded value must fail.
        let baseline = r#"{ "benchmark": "x", "runs": [
            { "label": "warm", "speedup_run": 4.0 },
            { "label": "cold", "speedup_run": 2.0 }
        ] }"#;
        let report = check_benchmarks(baseline, baseline, GateThresholds::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.comparisons.len(), 2);
        assert!(report.comparisons[1].metric.contains("runs[1]"));
        let degraded = baseline.replace("\"speedup_run\": 2.0", "\"speedup_run\": 1.0");
        let report = check_benchmarks(baseline, &degraded, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report.failures[0].contains("runs[1] speedup_run"));
        // Dropping the array entirely must also fail, not pass silently.
        let missing = r#"{ "benchmark": "x" }"#;
        let report = check_benchmarks(baseline, missing, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("runs[0]: entry missing")));
    }

    #[test]
    fn mismatched_benchmarks_are_rejected() {
        let other = baseline().replace("power_engine", "fault_sim_sweep");
        assert!(check_benchmarks(&baseline(), &other, GateThresholds::default()).is_err());
        assert!(check_benchmarks("not json", &baseline(), GateThresholds::default()).is_err());
    }
}
