//! Benchmark regression gating.
//!
//! The CI workflow reruns the throughput benchmarks on every PR and
//! compares the fresh numbers against the committed `BENCH_*.json`
//! baselines; this module implements the comparison the `bench_check`
//! binary applies.
//!
//! Gated metrics are selected by a schema-agnostic rule so the checker
//! survives benchmark evolution, and they fall into two classes with
//! separate thresholds:
//!
//! * fields starting with `speedup_` are **machine-relative** — kernel
//!   vs. frozen-baseline ratios measured in the same process on the same
//!   machine, so they transfer between the machine that committed the
//!   baseline and the CI runner. They carry the tight gate (25 % by
//!   default): a kernel regression shows up here first.
//! * fields ending in `_per_sec` are **absolute** throughputs; a CI
//!   runner of a different CPU generation can legitimately sit well
//!   below the committed numbers, so they only gate catastrophic
//!   collapses (50 % by default) — the "engine suddenly 10x slower"
//!   class of failure.
//!
//! Fields prefixed `baseline_` are never gated: they measure the frozen
//! seed replica, which is a reference, not a product path — that covers
//! both its raw `baseline_faults_per_sec` throughput and the boolean
//! `baseline_skipped` marker the fault-sim sweep writes for sizes whose
//! replica is capped out (above 256×256). Unknown and non-numeric fields
//! are tolerated everywhere, so schema evolution (like the lane-batched
//! `batched_*_per_sec` / `speedup_batched_*` family) gates automatically
//! without checker changes, and sizes whose baseline-relative metrics are
//! absent from the *committed* file are simply not compared for them.
//! Fields are compared at the top level and inside each entry of a
//! `sizes` array, with entries matched across files by their
//! `rows`×`cols` pair.

use crate::json::{parse, JsonValue};

/// The two regression thresholds of the gate (fractions of the baseline
/// value a current measurement may drop before failing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateThresholds {
    /// Applied to machine-relative `speedup_*` metrics.
    pub relative: f64,
    /// Applied to absolute `*_per_sec` metrics.
    pub absolute: f64,
}

impl Default for GateThresholds {
    fn default() -> Self {
        Self {
            relative: 0.25,
            absolute: 0.5,
        }
    }
}

/// One gated metric compared between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric label, e.g. `512x512 engine_cycles_per_sec`.
    pub metric: String,
    /// Value in the committed baseline file.
    pub baseline: f64,
    /// Value in the freshly measured file.
    pub current: f64,
}

impl Comparison {
    /// `current / baseline` — below `1 - threshold` is a regression.
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline
        } else {
            1.0
        }
    }
}

/// The outcome of checking one benchmark pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Name of the benchmark (the `benchmark` field of both files).
    pub benchmark: String,
    /// Every gated metric that was compared.
    pub comparisons: Vec<Comparison>,
    /// Human-readable failure descriptions; empty means the gate passes.
    pub failures: Vec<String>,
}

impl RegressionReport {
    /// `true` when no gated metric regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn metric_threshold(name: &str, thresholds: GateThresholds) -> Option<f64> {
    if name.starts_with("baseline_") {
        return None;
    }
    if name.starts_with("speedup_") {
        Some(thresholds.relative)
    } else if name.ends_with("_per_sec") {
        Some(thresholds.absolute)
    } else {
        None
    }
}

fn gated_fields(value: &JsonValue, thresholds: GateThresholds) -> Vec<(String, f64, f64)> {
    match value {
        JsonValue::Object(members) => members
            .iter()
            .filter_map(|(name, value)| {
                let threshold = metric_threshold(name, thresholds)?;
                value.as_f64().map(|v| (name.clone(), v, threshold))
            })
            .collect(),
        _ => Vec::new(),
    }
}

fn size_key(entry: &JsonValue) -> Option<String> {
    let rows = entry.get("rows")?.as_f64()?;
    let cols = entry.get("cols")?.as_f64()?;
    Some(format!("{}x{}", rows as u64, cols as u64))
}

fn compare_scope(
    scope: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    thresholds: GateThresholds,
    report: &mut RegressionReport,
) {
    for (name, baseline_value, threshold) in gated_fields(baseline, thresholds) {
        let metric = if scope.is_empty() {
            name.clone()
        } else {
            format!("{scope} {name}")
        };
        let Some(current_value) = current.get(&name).and_then(JsonValue::as_f64) else {
            report
                .failures
                .push(format!("{metric}: missing from the current measurement"));
            continue;
        };
        let comparison = Comparison {
            metric: metric.clone(),
            baseline: baseline_value,
            current: current_value,
        };
        if comparison.ratio() < 1.0 - threshold {
            report.failures.push(format!(
                "{metric}: {current_value:.1} is {:.0}% below the baseline {baseline_value:.1} \
                 (allowed drop {:.0}%)",
                (1.0 - comparison.ratio()) * 100.0,
                threshold * 100.0
            ));
        }
        report.comparisons.push(comparison);
    }
}

/// Compares a freshly measured benchmark JSON against its committed
/// baseline.
///
/// # Errors
///
/// Returns a message when either document is malformed or the two files
/// describe different benchmarks.
pub fn check_benchmarks(
    baseline_text: &str,
    current_text: &str,
    thresholds: GateThresholds,
) -> Result<RegressionReport, String> {
    let baseline = parse(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let current = parse(current_text).map_err(|e| format!("current: {e}"))?;

    let baseline_name = baseline
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("baseline: missing \"benchmark\" field")?;
    let current_name = current
        .get("benchmark")
        .and_then(JsonValue::as_str)
        .ok_or("current: missing \"benchmark\" field")?;
    if baseline_name != current_name {
        return Err(format!(
            "benchmark mismatch: baseline is \"{baseline_name}\", current is \"{current_name}\""
        ));
    }

    let mut report = RegressionReport {
        benchmark: baseline_name.to_string(),
        comparisons: Vec::new(),
        failures: Vec::new(),
    };

    compare_scope("", &baseline, &current, thresholds, &mut report);

    let baseline_sizes = baseline.get("sizes").and_then(JsonValue::as_array);
    let current_sizes = current.get("sizes").and_then(JsonValue::as_array);
    if let Some(baseline_sizes) = baseline_sizes {
        for entry in baseline_sizes {
            let Some(key) = size_key(entry) else { continue };
            let matching = current_sizes.and_then(|sizes| {
                sizes
                    .iter()
                    .find(|candidate| size_key(candidate).as_deref() == Some(&key))
            });
            match matching {
                Some(current_entry) => {
                    compare_scope(&key, entry, current_entry, thresholds, &mut report);
                }
                None => report
                    .failures
                    .push(format!("{key}: size missing from the current measurement")),
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> String {
        r#"{
  "benchmark": "power_engine",
  "threads": 4,
  "sizes": [
    { "rows": 64, "cols": 64,
      "baseline_cycles_per_sec": 100.0, "engine_cycles_per_sec": 1000.0,
      "speedup_table1": 10.0 },
    { "rows": 512, "cols": 512,
      "baseline_cycles_per_sec": 90.0, "engine_cycles_per_sec": 4000.0,
      "speedup_table1": 44.0 }
  ]
}"#
        .to_string()
    }

    #[test]
    fn identical_files_pass() {
        let report = check_benchmarks(&baseline(), &baseline(), GateThresholds::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.benchmark, "power_engine");
        // Two gated metrics per size; the baseline_ replica is not gated.
        assert_eq!(report.comparisons.len(), 4);
        assert!(report
            .comparisons
            .iter()
            .all(|c| !c.metric.contains("baseline_")));
    }

    #[test]
    fn improvements_and_small_dips_pass() {
        let current = baseline()
            .replace(
                "\"engine_cycles_per_sec\": 1000.0",
                "\"engine_cycles_per_sec\": 1500.0",
            )
            // A 20% absolute-throughput dip (runner variance) passes...
            .replace(
                "\"engine_cycles_per_sec\": 4000.0",
                "\"engine_cycles_per_sec\": 3200.0",
            )
            // ...and so does a speedup dip inside the relative threshold.
            .replace("\"speedup_table1\": 44.0", "\"speedup_table1\": 36.0");
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn moderate_absolute_dip_is_absorbed_as_machine_variance() {
        // A 40% drop in raw cycles/sec alone (different CPU generation)
        // stays inside the 50% absolute allowance.
        let current = baseline().replace(
            "\"engine_cycles_per_sec\": 4000.0",
            "\"engine_cycles_per_sec\": 2400.0",
        );
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn synthetic_degradation_fails_the_gate() {
        // A 55% collapse of the absolute throughput at 512x512 must fail.
        let current = baseline().replace(
            "\"engine_cycles_per_sec\": 4000.0",
            "\"engine_cycles_per_sec\": 1800.0",
        );
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("512x512 engine_cycles_per_sec"));
    }

    #[test]
    fn speedup_regression_fails_at_the_tight_threshold() {
        // The machine-relative gate: a 30% speedup drop fails even though
        // the same relative drop in raw throughput would pass.
        let current = baseline().replace("\"speedup_table1\": 44.0", "\"speedup_table1\": 30.8");
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("512x512 speedup_table1"));
    }

    #[test]
    fn slower_frozen_baseline_replica_is_not_a_regression() {
        let current = baseline().replace(
            "\"baseline_cycles_per_sec\": 90.0",
            "\"baseline_cycles_per_sec\": 9.0",
        );
        let report = check_benchmarks(&baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn missing_sizes_and_metrics_fail() {
        let current = r#"{ "benchmark": "power_engine", "sizes": [
            { "rows": 64, "cols": 64, "engine_cycles_per_sec": 1000.0, "speedup_table1": 10.0 }
        ] }"#;
        let report = check_benchmarks(&baseline(), current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("512x512: size missing")));
    }

    /// A committed fault-sim baseline in the lane-batched schema: the
    /// 64×64 entry carries the full metric set, the 1024×1024 entry has
    /// its frozen seed replica skipped and gates only on the
    /// machine-relative batched-vs-kernel speedups.
    fn batched_baseline() -> String {
        r#"{
  "benchmark": "fault_sim_sweep",
  "threads": 1,
  "sizes": [
    { "rows": 64, "cols": 64,
      "baseline_skipped": false,
      "baseline_faults_per_sec": 2400.0,
      "kernel_serial_faults_per_sec": 110000.0,
      "batched_faults_per_sec": 900000.0,
      "speedup_serial": 45.0,
      "speedup_batched_vs_kernel": 8.2 },
    { "rows": 1024, "cols": 1024,
      "baseline_skipped": true,
      "kernel_serial_faults_per_sec": 1500.0,
      "batched_faults_per_sec": 500000.0,
      "speedup_batched_vs_kernel": 330.0 }
  ]
}"#
        .to_string()
    }

    #[test]
    fn batched_schema_gates_and_tolerates_baseline_skipped() {
        let report = check_benchmarks(
            &batched_baseline(),
            &batched_baseline(),
            GateThresholds::default(),
        )
        .unwrap();
        assert!(report.passed());
        // Gated: kernel + batched *_per_sec and the speedup_* family per
        // size. Never gated: the boolean `baseline_skipped`, the frozen
        // `baseline_faults_per_sec` replica and the rows/cols keys.
        assert_eq!(report.comparisons.len(), 7);
        assert!(report
            .comparisons
            .iter()
            .all(|c| !c.metric.contains("baseline_")));
    }

    #[test]
    fn synthetically_degraded_batched_metric_fails_the_gate() {
        // A 40% collapse of the 1024x1024 batched-vs-kernel speedup —
        // the machine-relative metric that carries the sweep's gate once
        // the baseline replica is skipped — must fail at the 25%
        // threshold.
        let current = batched_baseline().replace(
            "\"speedup_batched_vs_kernel\": 330.0",
            "\"speedup_batched_vs_kernel\": 198.0",
        );
        let report =
            check_benchmarks(&batched_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("1024x1024 speedup_batched_vs_kernel"));
    }

    #[test]
    fn unknown_and_non_numeric_fields_are_tolerated() {
        // Boolean, string and null members — plus fields absent from the
        // committed baseline — must neither gate nor fail.
        let current = batched_baseline()
            .replace(
                "\"baseline_skipped\": true,",
                "\"baseline_skipped\": true, \"note\": \"new runner\", \"calibrated\": null,",
            )
            .replace(
                "\"speedup_batched_vs_kernel\": 330.0",
                "\"speedup_batched_vs_kernel\": 330.0, \"speedup_future_metric\": 1.0",
            );
        let report =
            check_benchmarks(&batched_baseline(), &current, GateThresholds::default()).unwrap();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn mismatched_benchmarks_are_rejected() {
        let other = baseline().replace("power_engine", "fault_sim_sweep");
        assert!(check_benchmarks(&baseline(), &other, GateThresholds::default()).is_err());
        assert!(check_benchmarks("not json", &baseline(), GateThresholds::default()).is_err());
    }
}
